"""Ablation studies of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the performance model or one
design decision of the kernel/tuner and quantifies its contribution:

* ``staging`` — local-memory staging on/off (the data-reuse path);
* ``coalescing`` — the unaligned-read overhead on/off (Sec. III-B);
* ``parameters`` — 1-D sensitivity slices through the tuned optimum
  (how much each of the four parameters matters individually);
* ``tuner`` — exhaustive sweep vs budgeted random search vs hill
  climbing (how hard the optimum is to find);
* ``phi`` — the 2013 OpenCL Xeon Phi vs the paper's projected native
  OpenMP implementation (the stated future work);
* ``subband`` — brute-force vs two-step dedispersion cost and accuracy.
"""

from __future__ import annotations

import logging

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import apertif, lofar
from repro.core.config import KernelConfiguration
from repro.core.heuristics import hill_climb, random_search, simulated_annealing
from repro.core.subband import SubbandPlan
from repro.core.tuner import AutoTuner
from repro.experiments.base import (
    ExperimentResult,
    SweepCache,
    standard_devices,
    standard_setups,
)
from repro.errors import ReproError
from repro.hardware.catalog import hd7970, xeon_phi_5110p, xeon_phi_5110p_openmp
from repro.hardware.model import PerformanceModel

logger = logging.getLogger(__name__)


def run_ablation_staging(
    cache: SweepCache | None = None, n_dms: int = 1024
) -> ExperimentResult:
    """Local-memory staging on vs off, tuned configs, both setups."""
    cache = SweepCache() if cache is None else cache
    rows = []
    for setup in standard_setups():
        for device in standard_devices():
            best = cache.sweep(device, setup, n_dms).best
            grid = DMTrialGrid(n_dms)
            off = PerformanceModel(
                device, setup, grid, enable_staging=False
            ).simulate(best.config, validate=False)
            rows.append(
                (
                    setup.name,
                    device.name,
                    f"{best.gflops:.1f}",
                    f"{off.gflops:.1f}",
                    f"{best.gflops / off.gflops:.2f}x",
                    "yes" if best.metrics.staged else "no",
                )
            )
    return ExperimentResult(
        experiment_id="ablation-staging",
        title=f"Ablation: local-memory staging, tuned configs at {n_dms} DMs",
        headers=("Setup", "Device", "staged GF/s", "cache-only GF/s",
                 "staging gain", "tuned uses staging"),
        rows=tuple(rows),
        notes=(
            "Compute-bound Apertif kernels barely notice (cache reuse "
            "keeps memory off the critical path); memory-bound LOFAR "
            "kernels lose up to ~1.6x without staging.  Devices with "
            "emulated local memory are unaffected by construction."
        ),
    )


def run_ablation_coalescing(
    cache: SweepCache | None = None, n_dms: int = 1024
) -> ExperimentResult:
    """Unaligned-read overhead on vs off (Sec. III-B's factor <= 2)."""
    cache = SweepCache() if cache is None else cache
    rows = []
    for setup in standard_setups():
        for device in standard_devices():
            best = cache.sweep(device, setup, n_dms).best
            grid = DMTrialGrid(n_dms)
            aligned = PerformanceModel(
                device, setup, grid, enable_coalescing_overhead=False
            ).simulate(best.config, validate=False)
            rows.append(
                (
                    setup.name,
                    device.name,
                    f"{best.gflops:.1f}",
                    f"{aligned.gflops:.1f}",
                    f"{aligned.gflops / best.gflops:.2f}x",
                )
            )
    return ExperimentResult(
        experiment_id="ablation-coalescing",
        title=(
            f"Ablation: unaligned-read overhead at {n_dms} DMs "
            "(hypothetical perfectly aligned delays)"
        ),
        headers=("Setup", "Device", "real GF/s", "aligned GF/s",
                 "alignment would gain"),
        rows=tuple(rows),
        notes=(
            "Compute-bound cases gain nothing; memory-bound LOFAR gains "
            "a few percent — tuned tiles already amortise the overhead."
        ),
    )


def run_ablation_parameters(
    cache: SweepCache | None = None,
    n_dms: int = 1024,
    device=None,
) -> ExperimentResult:
    """1-D sensitivity: vary each parameter around the tuned optimum."""
    cache = SweepCache() if cache is None else cache
    device = device or hd7970()
    setup = apertif()
    sweep = cache.sweep(device, setup, n_dms)
    best = sweep.best
    grid = DMTrialGrid(n_dms)
    model = PerformanceModel(device, setup, grid)

    rows = []
    axes = {
        "work_items_time": (2, 4),
        "work_items_dm": (2, 4),
        "elements_time": (5, 25),
        "elements_dm": (2, 4),
    }
    base = {
        "work_items_time": best.config.work_items_time,
        "work_items_dm": best.config.work_items_dm,
        "elements_time": best.config.elements_time,
        "elements_dm": best.config.elements_dm,
    }
    rows.append(("(optimum)", best.config.describe(), f"{best.gflops:.1f}", "1.00"))
    for axis, factors in axes.items():
        for factor in factors:
            for direction in ("/", "x"):
                params = dict(base)
                value = (
                    params[axis] // factor
                    if direction == "/"
                    else params[axis] * factor
                )
                if value < 1:
                    continue
                params[axis] = value
                try:
                    config = KernelConfiguration(**params)
                    metrics = model.simulate(config, validate=False)
                except ReproError as error:
                    # Perturbing one parameter off the tuned optimum can
                    # leave the configuration infeasible for the device;
                    # those cells are simply absent from the table.  Only
                    # library errors mean "infeasible" — anything else
                    # (a model bug, a typo) must propagate, not vanish.
                    logger.debug(
                        "ablation: skipping %s %s%s (%s): %s",
                        axis,
                        direction,
                        factor,
                        type(error).__name__,
                        error,
                    )
                    continue
                rows.append(
                    (
                        f"{axis} {direction}{factor}",
                        config.describe(),
                        f"{metrics.gflops:.1f}",
                        f"{metrics.gflops / best.gflops:.2f}",
                    )
                )
    return ExperimentResult(
        experiment_id="ablation-parameters",
        title=(
            f"Ablation: single-parameter sensitivity around the "
            f"{device.name}/{setup.name} optimum at {n_dms} DMs"
        ),
        headers=("perturbation", "configuration", "GFLOP/s", "vs optimum"),
        rows=tuple(rows),
        notes="Every parameter matters; their interaction is why the "
              "paper concludes only auto-tuning can configure the kernel.",
    )


def run_ablation_tuner(n_dms: int = 1024, budget: int = 40) -> ExperimentResult:
    """Exhaustive vs random search vs hill climbing."""
    rows = []
    for setup in standard_setups():
        for device in (hd7970(),):
            grid = DMTrialGrid(n_dms)
            exhaustive = AutoTuner(device, setup).tune(grid)
            rand = random_search(device, setup, grid, budget=budget, seed=0)
            hill = hill_climb(device, setup, grid, budget=budget, seed=0)
            anneal = simulated_annealing(
                device, setup, grid, budget=budget, seed=0
            )
            best = exhaustive.best.gflops
            rows.append(
                (
                    setup.name,
                    device.name,
                    exhaustive.n_configurations,
                    f"{best:.1f}",
                    f"{rand.best_gflops:.1f} "
                    f"({rand.best_gflops / best:.0%})",
                    f"{hill.best_gflops:.1f} "
                    f"({hill.best_gflops / best:.0%})",
                    f"{anneal.best_gflops:.1f} "
                    f"({anneal.best_gflops / best:.0%})",
                )
            )
    return ExperimentResult(
        experiment_id="ablation-tuner",
        title=(
            f"Ablation: tuning strategies at {n_dms} DMs "
            f"(heuristic budget {budget} evaluations)"
        ),
        headers=("Setup", "Device", "space", "exhaustive",
                 f"random[{budget}]", f"hill-climb[{budget}]",
                 f"annealing[{budget}]"),
        rows=tuple(rows),
        notes=(
            "The multimodal space (Fig. 10) defeats greedy ascent; "
            "budgeted random search lands closer but still below the "
            "optimum — supporting exhaustive tuning."
        ),
    )


def run_ablation_phi(
    cache: SweepCache | None = None,
    instances: tuple[int, ...] = (64, 512, 4096),
) -> ExperimentResult:
    """OpenCL Xeon Phi vs the projected native OpenMP implementation."""
    cache = SweepCache() if cache is None else cache
    rows = []
    for setup in standard_setups():
        for n_dms in instances:
            opencl = cache.sweep(xeon_phi_5110p(), setup, n_dms).best
            openmp = (
                AutoTuner(xeon_phi_5110p_openmp(), setup)
                .tune(DMTrialGrid(n_dms))
                .best
            )
            rows.append(
                (
                    setup.name,
                    n_dms,
                    f"{opencl.gflops:.1f}",
                    f"{openmp.gflops:.1f}",
                    f"{openmp.gflops / opencl.gflops:.2f}x",
                )
            )
    return ExperimentResult(
        experiment_id="ablation-phi",
        title="Ablation: Xeon Phi OpenCL vs projected native OpenMP "
              "(the paper's stated future work)",
        headers=("Setup", "DMs", "OpenCL GF/s", "OpenMP GF/s", "gain"),
        rows=tuple(rows),
        notes=(
            "A mature native runtime roughly doubles the Phi, but it "
            "still trails every GPU — consistent with the paper's "
            "conclusion that GPUs are the better dedispersion platform."
        ),
    )


def run_ablation_quantization(
    cache: SweepCache | None = None, n_dms: int = 1024
) -> ExperimentResult:
    """FP32 vs 8-bit input samples: traffic, AI, and performance.

    The paper's analysis assumes 4-byte samples (Eq. 2's 1/4 bound);
    real back-ends deliver 8-bit, quartering the input traffic.  Each
    device's tuned configuration is re-simulated with 1-byte input and
    re-tuned, showing how much of the memory wall the paper's FP32
    assumption accounts for.
    """
    cache = SweepCache() if cache is None else cache
    rows = []
    for setup in standard_setups():
        for device in standard_devices():
            fp32 = cache.sweep(device, setup, n_dms).best
            grid = DMTrialGrid(n_dms)
            model8 = PerformanceModel(
                device, setup, grid, input_sample_bytes=1
            )
            same_config = model8.simulate(fp32.config, validate=False)
            rows.append(
                (
                    setup.name,
                    device.name,
                    f"{fp32.gflops:.1f}",
                    f"{same_config.gflops:.1f}",
                    f"{same_config.gflops / fp32.gflops:.2f}x",
                    f"{fp32.metrics.arithmetic_intensity:.2f} -> "
                    f"{same_config.arithmetic_intensity:.2f}",
                )
            )
    return ExperimentResult(
        experiment_id="ablation-quantization",
        title=(
            f"Ablation: FP32 vs 8-bit input samples at {n_dms} DMs "
            "(tuned FP32 configurations re-simulated)"
        ),
        headers=("Setup", "Device", "FP32 GF/s", "8-bit GF/s", "gain", "AI"),
        rows=tuple(rows),
        notes=(
            "Compute-bound Apertif kernels gain nothing (the ceiling is "
            "instruction issue, not bytes); memory-bound LOFAR kernels "
            "gain meaningfully — quantised input is the cheapest lever "
            "against the memory wall, which is why AMBER consumes 8-bit "
            "samples."
        ),
    )


def run_ablation_subband(n_dms: int = 2048) -> ExperimentResult:
    """Two-step (subband) dedispersion vs brute force: cost and error."""
    rows = []
    configs = {
        "Apertif": (apertif(), 32, 16),
        "LOFAR": (lofar(), 8, 4),
    }
    for name, (setup, n_sub, coarse) in configs.items():
        grid = DMTrialGrid(n_dms)
        plan = SubbandPlan(
            setup=setup, grid=grid, n_subbands=n_sub, coarse_factor=coarse
        )
        smear_samples = plan.max_delay_error_samples()
        rows.append(
            (
                name,
                f"{n_sub} x /{coarse}",
                f"{grid.n_dms * setup.samples_per_batch * setup.channels / 1e9:.1f}",
                f"{plan.flops() / 1e9:.1f}",
                f"{plan.flop_reduction():.1f}x",
                smear_samples,
            )
        )
    return ExperimentResult(
        experiment_id="ablation-subband",
        title=(
            f"Ablation: brute-force vs two-step subband dedispersion "
            f"at {n_dms} DMs"
        ),
        headers=("Setup", "subbands x coarsening", "brute GFLOP",
                 "two-step GFLOP", "reduction", "max extra smearing (samples)"),
        rows=tuple(rows),
        notes=(
            "The two-step decomposition trades bounded extra smearing for "
            "an order-of-magnitude FLOP cut at Apertif scale — the "
            "optimisation the paper's authors later adopted in AMBER."
        ),
    )
