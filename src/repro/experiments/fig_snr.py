"""Figures 8-10: statistics of the optimum.

Figs. 8-9 plot the optimum's signal-to-noise ratio over the optimisation
space per instance; Fig. 10 shows one space's histogram (HD7970, Apertif),
where "the optimum lies far from the typical configuration".
"""

from __future__ import annotations

from typing import Sequence

from repro.astro.observation import ObservationSetup
from repro.core.stats import optimum_snr, performance_histogram
from repro.experiments.base import (
    DEFAULT_INSTANCES,
    ExperimentResult,
    SweepCache,
    standard_devices,
    standard_setups,
)
from repro.hardware.catalog import hd7970


def _run_snr(
    experiment_id: str,
    setup: ObservationSetup,
    cache: SweepCache | None,
    instances: Sequence[int],
) -> ExperimentResult:
    cache = SweepCache() if cache is None else cache
    series: dict[str, tuple[float, ...]] = {}
    for device in standard_devices():
        values = [
            optimum_snr(cache.sweep(device, setup, n).population_gflops)
            for n in instances
        ]
        series[device.name] = tuple(values)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=(
            f"Fig. {experiment_id[3:]}: signal-to-noise ratio of the "
            f"optimum, {setup.name}"
        ),
        x_label="DMs",
        x_values=tuple(instances),
        series=series,
    )


def run_fig8(
    cache: SweepCache | None = None,
    instances: Sequence[int] = DEFAULT_INSTANCES,
) -> ExperimentResult:
    """Fig. 8: SNR of the optimum, Apertif."""
    return _run_snr("fig8", standard_setups()[0], cache, instances)


def run_fig9(
    cache: SweepCache | None = None,
    instances: Sequence[int] = DEFAULT_INSTANCES,
) -> ExperimentResult:
    """Fig. 9: SNR of the optimum, LOFAR."""
    return _run_snr("fig9", standard_setups()[1], cache, instances)


def run_fig10(
    cache: SweepCache | None = None,
    n_dms: int = 1024,
    n_bins: int = 40,
) -> ExperimentResult:
    """Fig. 10: performance histogram of the HD7970/Apertif space."""
    cache = SweepCache() if cache is None else cache
    setup = standard_setups()[0]
    sweep = cache.sweep(hd7970(), setup, n_dms)
    counts, edges = performance_histogram(
        sweep.population_gflops, n_bins=n_bins
    )
    centers = tuple(
        float((edges[i] + edges[i + 1]) / 2) for i in range(len(counts))
    )
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            f"Fig. 10: configurations over performance, HD7970/"
            f"{setup.name} at {n_dms} DMs"
        ),
        x_label="GFLOP/s (bin centre)",
        x_values=centers,
        series={"configurations": tuple(float(c) for c in counts)},
        notes=(
            f"optimum: {sweep.best.gflops:.1f} GFLOP/s over "
            f"{sweep.n_configurations} configurations"
        ),
    )
