"""Shared experiment infrastructure: result container and sweep cache.

Most figures consume the same tuning sweeps (a full sweep per device,
setup and input instance), so :class:`SweepCache` memoises them; running
every experiment back to back costs one sweep per combination, not one per
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup, apertif, lofar
from repro.constants import INPUT_INSTANCES
from repro.core.tuner import AutoTuner, TuningResult
from repro.hardware.catalog import paper_accelerators
from repro.hardware.device import DeviceSpec
from repro.analysis.reporting import format_lineplot, format_series, format_table


#: Input instances used by default: the paper's 12 powers of two, trimmed
#: is possible through the ``instances`` argument of every driver.
DEFAULT_INSTANCES: tuple[int, ...] = INPUT_INSTANCES


@dataclass(frozen=True)
class ExperimentResult:
    """Reproduced table/figure data plus its textual rendering.

    ``series`` maps a legend label to y-values over ``x_values`` — empty
    for pure tables, which carry ``headers``/``rows`` instead.
    """

    experiment_id: str
    title: str
    x_label: str = ""
    x_values: tuple = ()
    series: dict[str, tuple[float, ...]] = field(default_factory=dict)
    headers: tuple[str, ...] = ()
    rows: tuple[tuple, ...] = ()
    notes: str = ""

    def render(self, precision: int = 1) -> str:
        """The paper-style textual table/series."""
        if self.series:
            body = format_series(
                self.x_label,
                self.x_values,
                {k: list(v) for k, v in self.series.items()},
                title=self.title,
                precision=precision,
            )
        else:
            body = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            body += f"\n{self.notes}"
        return body

    def render_plot(self, height: int = 16, width: int = 64) -> str:
        """ASCII chart of the series (figure experiments only)."""
        if not self.series:
            raise ValueError(
                f"experiment {self.experiment_id} has no series to plot"
            )
        return format_lineplot(
            self.x_label,
            self.x_values,
            {k: list(v) for k, v in self.series.items()},
            title=self.title,
            height=height,
            width=width,
        )


class SweepCache:
    """Memoised tuning sweeps shared by all experiment drivers."""

    def __init__(self) -> None:
        self._sweeps: dict[tuple, TuningResult] = {}

    def sweep(
        self,
        device: DeviceSpec,
        setup: ObservationSetup,
        n_dms: int,
        zero_dm: bool = False,
    ) -> TuningResult:
        """The full tuning sweep for one (device, setup, instance)."""
        key = (device.name, setup.name, n_dms, zero_dm)
        if key not in self._sweeps:
            grid = (
                DMTrialGrid.zero_dm(n_dms) if zero_dm else DMTrialGrid(n_dms)
            )
            self._sweeps[key] = AutoTuner(device, setup).tune(grid)
        return self._sweeps[key]

    def tuned_gflops(
        self,
        device: DeviceSpec,
        setup: ObservationSetup,
        instances: Sequence[int],
        zero_dm: bool = False,
    ) -> dict[int, float]:
        """Tuned-optimum GFLOP/s per instance."""
        return {
            n: self.sweep(device, setup, n, zero_dm).best.gflops
            for n in instances
        }

    def __len__(self) -> int:
        return len(self._sweeps)


def standard_setups() -> tuple[ObservationSetup, ObservationSetup]:
    """(Apertif, LOFAR) — the paper's two observational setups."""
    return apertif(), lofar()


def standard_devices() -> tuple[DeviceSpec, ...]:
    """The five accelerators of Table I."""
    return paper_accelerators()
