"""Heterogeneous fleet planning: covering a survey with mixed devices.

Sec. V-D sizes a homogeneous deployment (N copies of one accelerator).
Real installations are heterogeneous — racks accumulate GPU generations —
so this module generalises the sizing: given an inventory of device types
(with counts and optional unit costs), pack the survey's beams onto the
fewest-cost subset that sustains real time, using each device's tuned
per-beam throughput and memory capacity from
:class:`~repro.pipeline.multibeam.MultiBeamScheduler`.

The packing is greedy by beams-per-cost (provably within one device of
optimal for this divisible-beam formulation, since beams are identical
and each device type contributes a fixed beam capacity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import PipelineError
from repro.hardware.device import DeviceSpec
from repro.obs import get_registry, span
from repro.pipeline.multibeam import DEFAULT_DEVICE_MEMORY, MultiBeamScheduler
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass(frozen=True)
class FleetDevice:
    """One device type available to the fleet.

    ``unit_cost`` may be zero — already-owned hardware the plan should
    always prefer over purchases.
    """

    device: DeviceSpec
    available: int
    unit_cost: float = 1.0
    memory_bytes: int = DEFAULT_DEVICE_MEMORY

    def __post_init__(self) -> None:
        require_positive_int(self.available, "available")
        require_non_negative(self.unit_cost, "unit_cost")


@dataclass(frozen=True)
class FleetAssignment:
    """How many units of one device type the plan uses."""

    device_name: str
    units: int
    beams_per_unit: int
    beams_total: int
    cost: float


@dataclass(frozen=True)
class FleetPlan:
    """A complete fleet covering the survey."""

    setup_name: str
    n_dms: int
    n_beams: int
    assignments: tuple[FleetAssignment, ...]

    @property
    def total_cost(self) -> float:
        """Summed unit costs of the selected devices."""
        return sum(a.cost for a in self.assignments)

    @property
    def total_units(self) -> int:
        """Devices used across all types."""
        return sum(a.units for a in self.assignments)

    @property
    def beams_covered(self) -> int:
        """Beams hosted (>= n_beams when the plan is feasible)."""
        return sum(a.beams_total for a in self.assignments)

    def summary(self) -> str:
        """Human-readable plan."""
        lines = [
            f"fleet for {self.setup_name}, {self.n_dms} DMs x "
            f"{self.n_beams} beams (cost {self.total_cost:g}, "
            f"{self.total_units} devices):"
        ]
        for a in self.assignments:
            lines.append(
                f"  {a.units} x {a.device_name} "
                f"({a.beams_per_unit} beams each -> {a.beams_total})"
            )
        return "\n".join(lines)

    def execute(
        self,
        inventory: list[FleetDevice] | tuple[FleetDevice, ...],
        setup: ObservationSetup,
        grid: DMTrialGrid,
        duration_s: float = 1.0,
        **engine_kwargs,
    ):
        """Run this plan's fleet on the survey it was sized for.

        Delegates to :func:`execute_plan`; ``inventory`` must be the
        inventory the plan was computed from (it supplies the device
        specs and memory sizes behind the assignment names).
        """
        return execute_plan(
            self, inventory, setup, grid, duration_s, **engine_kwargs
        )


def plan_fleet(
    inventory: list[FleetDevice] | tuple[FleetDevice, ...],
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_beams: int,
) -> FleetPlan:
    """Select the cheapest device mix that hosts ``n_beams`` in real time.

    Device types that cannot sustain even one beam in real time are
    skipped; raises :class:`PipelineError` when the whole inventory cannot
    cover the survey.
    """
    require_positive_int(n_beams, "n_beams")
    if not inventory:
        raise PipelineError("fleet inventory is empty")

    with span(
        "pipeline.fleet_plan",
        setup=setup.name,
        n_dms=grid.n_dms,
        n_beams=n_beams,
    ):
        plan = _plan_fleet(inventory, setup, grid, n_beams)
    registry = get_registry()
    registry.counter(
        "repro_fleet_plans_total", setup=setup.name
    ).inc()
    registry.gauge("repro_fleet_units", setup=setup.name).set(
        plan.total_units
    )
    registry.gauge("repro_fleet_cost", setup=setup.name).set(
        plan.total_cost
    )
    return plan


def _plan_fleet(
    inventory: list[FleetDevice] | tuple[FleetDevice, ...],
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_beams: int,
) -> FleetPlan:
    capacities: list[tuple[float, FleetDevice, int]] = []
    for entry in inventory:
        scheduler = MultiBeamScheduler(
            entry.device, setup, grid, device_memory_bytes=entry.memory_bytes
        )
        try:
            per_unit = scheduler.assign(n_beams).beams_per_device
        except PipelineError:
            continue  # cannot host a single beam in real time
        efficiency = (
            math.inf if entry.unit_cost == 0
            else per_unit / entry.unit_cost
        )
        capacities.append((efficiency, entry, per_unit))

    if not capacities:
        raise PipelineError(
            f"no device type in the inventory can host a single "
            f"{setup.name} beam ({grid.n_dms} DMs) in real time"
        )
    capacities.sort(key=lambda item: -item[0])
    remaining = n_beams
    assignments: list[FleetAssignment] = []
    for _, entry, per_unit in capacities:
        if remaining <= 0:
            break
        needed = -(-remaining // per_unit)  # ceil
        units = min(needed, entry.available)
        if units == 0:
            continue
        assignments.append(
            FleetAssignment(
                device_name=entry.device.name,
                units=units,
                beams_per_unit=per_unit,
                beams_total=units * per_unit,
                cost=units * entry.unit_cost,
            )
        )
        remaining -= units * per_unit
    if remaining > 0:
        raise PipelineError(
            f"inventory covers only {n_beams - remaining} of {n_beams} beams"
        )
    return FleetPlan(
        setup_name=setup.name,
        n_dms=grid.n_dms,
        n_beams=n_beams,
        assignments=tuple(assignments),
    )


def execute_plan(
    plan: FleetPlan,
    inventory: list[FleetDevice] | tuple[FleetDevice, ...],
    setup: ObservationSetup,
    grid: DMTrialGrid,
    duration_s: float = 1.0,
    **engine_kwargs,
):
    """Execute a fleet plan through :mod:`repro.sched`.

    Bridges planning into execution: builds an
    :class:`~repro.sched.ExecutionEngine` over exactly the units the
    plan selected and runs every shard of the survey, returning the
    :class:`~repro.sched.RunReport` (whose ``realtime_sustained`` flag
    is the empirical counterpart of the plan's feasibility claim).
    Engine keywords — ``seed``, ``faults``, ``steal`` … — pass through.
    """
    from repro.sched import ExecutionEngine  # local: sched sits above pipeline

    engine = ExecutionEngine.from_plan(
        plan, inventory, setup, grid, duration_s=duration_s, **engine_kwargs
    )
    return engine.run()
