"""Survey orchestration: the full pipeline over a multi-beam telescope.

Combines every stage this repository implements into the workflow the
paper's introduction motivates: for each beam, stream chunks through RFI
mitigation, tuned dedispersion, and both detection back-ends
(single-pulse boxcar search and Fourier periodicity search), collecting
candidates and real-time accounting into a :class:`SurveyReport`.

.. deprecated::
    This single-host driver is superseded by :mod:`repro.survey` —
    the resumable, coincidence-vetoed survey subsystem
    (``repro survey`` / :func:`repro.survey.run_survey`).
    :meth:`SurveyPipeline.run` still works (it warns once and routes
    through :mod:`repro.survey.legacy`), but new code should build a
    :class:`~repro.survey.SurveyPlan` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.periodicity import PeriodicityCandidate
from repro.astro.snr import DMDetection
from repro.astro.telescope import Telescope
from repro.core.plan import DedispersionPlan
from repro.errors import PipelineError
from repro.hardware.device import DeviceSpec
from repro.pipeline.streaming import StreamingDedispersion
from repro.utils.deprecation import warn_once
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class BeamResult:
    """Everything the survey learned about one beam."""

    beam_index: int
    beam_label: str
    chunks_processed: int
    best_single_pulse: DMDetection | None
    periodicity_candidates: tuple[PeriodicityCandidate, ...]
    masked_channels: int
    realtime: bool

    @property
    def has_candidate(self) -> bool:
        """Whether any detection back-end fired."""
        return self.best_single_pulse is not None or bool(
            self.periodicity_candidates
        )


@dataclass(frozen=True)
class SurveyReport:
    """Aggregated outcome of one survey run."""

    setup_name: str
    device_name: str
    n_dms: int
    beams: tuple[BeamResult, ...]

    @property
    def candidates(self) -> tuple[BeamResult, ...]:
        """Beams with at least one candidate."""
        return tuple(b for b in self.beams if b.has_candidate)

    @property
    def all_realtime(self) -> bool:
        """Whether every beam kept up with real time."""
        return all(b.realtime for b in self.beams)

    def summary(self) -> str:
        """Multi-line, human-readable report."""
        lines = [
            f"survey: {self.setup_name} on {self.device_name}, "
            f"{self.n_dms} trial DMs, {len(self.beams)} beams "
            f"({'real-time' if self.all_realtime else 'NOT real-time'})"
        ]
        for beam in self.beams:
            if beam.best_single_pulse is not None:
                sp = beam.best_single_pulse
                verdict = f"single-pulse DM {sp.dm:.2f} S/N {sp.snr:.1f}"
            elif beam.periodicity_candidates:
                c = beam.periodicity_candidates[0]
                verdict = (
                    f"periodic P={c.period_seconds * 1e3:.1f} ms "
                    f"DM {c.dm:.2f} ({c.sigma:.1f} sigma)"
                )
            else:
                verdict = "no candidate"
            lines.append(f"  {beam.beam_label:24s} {verdict}")
        return "\n".join(lines)


class SurveyPipeline:
    """Drives a telescope's beams through the complete search chain."""

    def __init__(
        self,
        telescope: Telescope,
        grid: DMTrialGrid,
        device: DeviceSpec,
        single_pulse_threshold: float = 6.0,
        periodicity_threshold: float | None = None,
        rfi_mitigation: bool = True,
    ):
        require_positive(single_pulse_threshold, "single_pulse_threshold")
        if periodicity_threshold is not None:
            require_positive(periodicity_threshold, "periodicity_threshold")
        self.telescope = telescope
        self.grid = grid
        self.device = device
        self.single_pulse_threshold = single_pulse_threshold
        self.periodicity_threshold = periodicity_threshold
        self.rfi_mitigation = rfi_mitigation
        if rfi_mitigation and grid.first == 0.0 and not grid.is_degenerate:
            # The zero-DM filter nulls the DM-0 series; searching it would
            # amplify float residue (see repro.astro.rfi.zero_dm_filter).
            raise PipelineError(
                "RFI mitigation uses the zero-DM filter: start the trial "
                "grid above DM 0 (e.g. first=grid.step)"
            )
        self.plan = DedispersionPlan.create(
            telescope.setup, grid, device
        )
        self._stream = StreamingDedispersion(self.plan)

    # ------------------------------------------------------------------
    def run(self, n_chunks: int = 2) -> SurveyReport:
        """Process every beam for ``n_chunks`` chunks; return the report.

        Deprecated shim: warns once, then runs the moved body in
        :func:`repro.survey.legacy.run_survey_pipeline` — identical
        behaviour, spans, and metrics.
        """
        from repro.survey.legacy import run_survey_pipeline

        warn_once(
            "SurveyPipeline.run",
            "SurveyPipeline.run is deprecated; use the resumable "
            "multi-beam survey driver instead, e.g. "
            "repro.survey.run_survey(SurveyPlan(scenario='rfi_storm', "
            "n_beams=8)) or the `repro survey` command",
        )
        return run_survey_pipeline(self, n_chunks)
