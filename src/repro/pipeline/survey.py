"""Survey orchestration: the full pipeline over a multi-beam telescope.

Combines every stage this repository implements into the workflow the
paper's introduction motivates: for each beam, stream chunks through RFI
mitigation, tuned dedispersion, and both detection back-ends
(single-pulse boxcar search and Fourier periodicity search), collecting
candidates and real-time accounting into a :class:`SurveyReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.periodicity import PeriodicityCandidate, search_periodicity
from repro.astro.rfi import mask_noisy_channels, zero_dm_filter
from repro.astro.snr import DMDetection, detect_dm
from repro.astro.telescope import Telescope
from repro.core.plan import DedispersionPlan
from repro.errors import PipelineError
from repro.hardware.device import DeviceSpec
from repro.obs import get_registry, span
from repro.pipeline.streaming import StreamingDedispersion
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class BeamResult:
    """Everything the survey learned about one beam."""

    beam_index: int
    beam_label: str
    chunks_processed: int
    best_single_pulse: DMDetection | None
    periodicity_candidates: tuple[PeriodicityCandidate, ...]
    masked_channels: int
    realtime: bool

    @property
    def has_candidate(self) -> bool:
        """Whether any detection back-end fired."""
        return self.best_single_pulse is not None or bool(
            self.periodicity_candidates
        )


@dataclass(frozen=True)
class SurveyReport:
    """Aggregated outcome of one survey run."""

    setup_name: str
    device_name: str
    n_dms: int
    beams: tuple[BeamResult, ...]

    @property
    def candidates(self) -> tuple[BeamResult, ...]:
        """Beams with at least one candidate."""
        return tuple(b for b in self.beams if b.has_candidate)

    @property
    def all_realtime(self) -> bool:
        """Whether every beam kept up with real time."""
        return all(b.realtime for b in self.beams)

    def summary(self) -> str:
        """Multi-line, human-readable report."""
        lines = [
            f"survey: {self.setup_name} on {self.device_name}, "
            f"{self.n_dms} trial DMs, {len(self.beams)} beams "
            f"({'real-time' if self.all_realtime else 'NOT real-time'})"
        ]
        for beam in self.beams:
            if beam.best_single_pulse is not None:
                sp = beam.best_single_pulse
                verdict = f"single-pulse DM {sp.dm:.2f} S/N {sp.snr:.1f}"
            elif beam.periodicity_candidates:
                c = beam.periodicity_candidates[0]
                verdict = (
                    f"periodic P={c.period_seconds * 1e3:.1f} ms "
                    f"DM {c.dm:.2f} ({c.sigma:.1f} sigma)"
                )
            else:
                verdict = "no candidate"
            lines.append(f"  {beam.beam_label:24s} {verdict}")
        return "\n".join(lines)


class SurveyPipeline:
    """Drives a telescope's beams through the complete search chain."""

    def __init__(
        self,
        telescope: Telescope,
        grid: DMTrialGrid,
        device: DeviceSpec,
        single_pulse_threshold: float = 6.0,
        periodicity_threshold: float | None = None,
        rfi_mitigation: bool = True,
    ):
        require_positive(single_pulse_threshold, "single_pulse_threshold")
        if periodicity_threshold is not None:
            require_positive(periodicity_threshold, "periodicity_threshold")
        self.telescope = telescope
        self.grid = grid
        self.device = device
        self.single_pulse_threshold = single_pulse_threshold
        self.periodicity_threshold = periodicity_threshold
        self.rfi_mitigation = rfi_mitigation
        if rfi_mitigation and grid.first == 0.0 and not grid.is_degenerate:
            # The zero-DM filter nulls the DM-0 series; searching it would
            # amplify float residue (see repro.astro.rfi.zero_dm_filter).
            raise PipelineError(
                "RFI mitigation uses the zero-DM filter: start the trial "
                "grid above DM 0 (e.g. first=grid.step)"
            )
        self.plan = DedispersionPlan.create(
            telescope.setup, grid, device
        )
        self._stream = StreamingDedispersion(self.plan)

    # ------------------------------------------------------------------
    def run(self, n_chunks: int = 2) -> SurveyReport:
        """Process every beam for ``n_chunks`` chunks; return the report."""
        require_positive_int(n_chunks, "n_chunks")
        results = [
            self._run_beam(beam, n_chunks) for beam in self.telescope.beams
        ]
        return SurveyReport(
            setup_name=self.telescope.setup.name,
            device_name=self.device.name,
            n_dms=self.grid.n_dms,
            beams=tuple(results),
        )

    def _run_beam(self, beam, n_chunks: int) -> BeamResult:
        setup = self.telescope.setup
        best_sp: DMDetection | None = None
        periodic: list[PeriodicityCandidate] = []
        masked = 0
        realtime = True
        series_accumulator: list[np.ndarray] = []

        with span(
            "pipeline.beam", beam=beam.label, setup=setup.name
        ) as beam_span:
            for chunk in self.telescope.stream(beam, n_chunks, self.grid):
                data = chunk.data
                if self.rfi_mitigation:
                    with span("pipeline.rfi", beam=beam.label):
                        masked += mask_noisy_channels(data).n_masked
                        zero_dm_filter(data)
                result = self._stream.process(chunk)
                realtime &= result.realtime
                with span("pipeline.single_pulse", beam=beam.label):
                    detection = detect_dm(result.output, self.grid.values)
                if detection.snr >= self.single_pulse_threshold and (
                    best_sp is None or detection.snr > best_sp.snr
                ):
                    best_sp = detection
                series_accumulator.append(result.output)

            # Periodicity runs on the concatenated dedispersed series:
            # longer baselines resolve lower frequencies and raise
            # significance.
            full = np.concatenate(series_accumulator, axis=1)
            with span("pipeline.periodicity", beam=beam.label):
                periodic = search_periodicity(
                    full,
                    self.grid.values,
                    setup.samples_per_second,
                    sigma_threshold=self.periodicity_threshold,
                )
            beam_span.attributes["realtime"] = realtime
        registry = get_registry()
        registry.counter(
            "repro_pipeline_beams_total", setup=setup.name
        ).inc()
        if best_sp is not None or periodic:
            registry.counter(
                "repro_pipeline_candidates_total", setup=setup.name
            ).inc()
        return BeamResult(
            beam_index=beam.index,
            beam_label=beam.label,
            chunks_processed=n_chunks,
            best_single_pulse=best_sp,
            periodicity_candidates=tuple(periodic[:5]),
            masked_channels=masked,
            realtime=realtime,
        )
