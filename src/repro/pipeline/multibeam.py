"""Multi-beam scheduling: packing beams onto accelerators.

Telescopes form hundreds of simultaneous beams (Apertif: 450), each an
independent dedispersion workload.  An accelerator can host several beams
as long as (a) the summed compute keeps up with real time and (b) input
plus output for every hosted beam fit in device memory — the two
constraints of the paper's Sec. V-D sizing argument ("combining 9 beams
per GPU ... with enough available memory to store both the input and the
dedispersed time-series").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import PipelineError
from repro.hardware.device import DeviceSpec
from repro.core.tuner import AutoTuner
from repro.utils.deprecation import warn_once
from repro.utils.intmath import ceil_div
from repro.utils.validation import require_positive_int


#: Device memory assumed per accelerator, bytes (3 GiB — the HD7970 /
#: K20-class cards of the paper).
DEFAULT_DEVICE_MEMORY: int = 3 * 1024 ** 3


@dataclass(frozen=True)
class BeamAssignment:
    """How many beams one device hosts and why that number."""

    device_name: str
    beams_per_device: int
    devices_needed: int
    seconds_per_beam: float
    memory_per_beam: int
    limited_by: str  # "compute" or "memory"


class MultiBeamScheduler:
    """Computes beam packing for a (device, setup, grid) combination."""

    def __init__(
        self,
        device: DeviceSpec,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        device_memory_bytes: int = DEFAULT_DEVICE_MEMORY,
    ):
        require_positive_int(device_memory_bytes, "device_memory_bytes")
        self.device = device
        self.setup = setup
        self.grid = grid
        self.device_memory_bytes = device_memory_bytes

    def seconds_per_beam(self) -> float:
        """Tuned time to dedisperse one second of one beam."""
        best = AutoTuner(self.device, self.setup).tune(self.grid).best
        return best.metrics.seconds

    def memory_per_beam(self) -> int:
        """Bytes of device memory one beam needs (input + output)."""
        return self.setup.input_bytes(
            self.grid.n_dms, self.grid.step or 0.25
        ) + self.setup.output_bytes(self.grid.n_dms)

    def assign(self, n_beams: int) -> BeamAssignment:
        """Pack ``n_beams`` onto as few devices as real time allows."""
        require_positive_int(n_beams, "n_beams")
        t_beam = self.seconds_per_beam()
        if t_beam >= 1.0:
            raise PipelineError(
                f"{self.device.name} cannot dedisperse even one "
                f"{self.setup.name} beam in real time "
                f"({t_beam:.3f} s per second of data)"
            )
        by_compute = int(1.0 / t_beam)
        m_beam = self.memory_per_beam()
        by_memory = self.device_memory_bytes // m_beam
        if by_memory < 1:
            raise PipelineError(
                f"one {self.setup.name} beam needs {m_beam} B; "
                f"{self.device.name} has {self.device_memory_bytes}"
            )
        beams = min(by_compute, by_memory)
        return BeamAssignment(
            device_name=self.device.name,
            beams_per_device=beams,
            devices_needed=ceil_div(n_beams, beams),
            seconds_per_beam=t_beam,
            memory_per_beam=m_beam,
            limited_by="compute" if by_compute <= by_memory else "memory",
        )

    def execute(self, n_beams: int, duration_s: float = 1.0, **engine_kwargs):
        """Run ``n_beams`` on the devices :meth:`assign` sizes.

        Deprecated shim: warns once, then runs the moved body in
        :func:`repro.survey.legacy.execute_beam_assignment` —
        identical behaviour (the assignment's ``devices_needed`` units
        of this device execute the sharded survey through
        :mod:`repro.sched`; engine keywords pass through).  New code
        should drive the fleet through
        :func:`repro.survey.run_survey`, which composes this dispatch
        with the per-beam search and cross-beam coincidencing.
        """
        from repro.survey.legacy import execute_beam_assignment

        warn_once(
            "MultiBeamScheduler.execute",
            "MultiBeamScheduler.execute is deprecated; use "
            "repro.survey.run_survey (fleet dispatch included) or "
            "repro.sched.ExecutionEngine directly",
        )
        return execute_beam_assignment(
            self, n_beams, duration_s, **engine_kwargs
        )
