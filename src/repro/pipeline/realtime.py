"""Real-time feasibility and deployment sizing (paper Sec. V-D).

The real-time constraint: one second of telescope data must be dedispersed
in less than one second of computation, or the survey falls behind forever.
This module answers two questions per (device, setup, instance):

* does a tuned kernel meet real time, and with what margin?
* how many accelerators does a full deployment need?  The paper's worked
  example: Apertif needs 2,000 DMs x 450 beams, which the HD7970 covers
  with ~50 GPUs (9 beams each) versus ~1,800 CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup, apertif
from repro.core.tuner import AutoTuner
from repro.hardware.catalog import hd7970, xeon_e5_2620
from repro.hardware.cpu_model import CPUModel
from repro.hardware.device import DeviceSpec
from repro.obs import get_registry, span
from repro.pipeline.multibeam import DEFAULT_DEVICE_MEMORY, MultiBeamScheduler
from repro.utils.intmath import ceil_div
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class RealtimeReport:
    """Real-time verdict for one (device, setup, instance)."""

    device_name: str
    setup_name: str
    n_dms: int
    achieved_gflops: float
    required_gflops: float
    realtime: bool

    @property
    def margin(self) -> float:
        """achieved / required; > 1 means real time with headroom."""
        return self.achieved_gflops / self.required_gflops


def realtime_report(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
) -> RealtimeReport:
    """Tune the kernel and compare against the real-time line."""
    with span(
        "pipeline.realtime_check", device=device.name, n_dms=grid.n_dms
    ):
        best = AutoTuner(device, setup).tune(grid).best
        required = setup.realtime_gflops(grid.n_dms)
        report = RealtimeReport(
            device_name=device.name,
            setup_name=setup.name,
            n_dms=grid.n_dms,
            achieved_gflops=best.gflops,
            required_gflops=required,
            realtime=best.gflops >= required,
        )
    get_registry().gauge(
        "repro_pipeline_realtime_margin",
        stage="tuned-kernel",
        device=device.name,
        setup=setup.name,
    ).set(report.margin)
    return report


@dataclass(frozen=True)
class DeploymentPlan:
    """Accelerator count for a full multi-beam real-time deployment."""

    device_name: str
    setup_name: str
    n_dms: int
    n_beams: int
    beams_per_device: int
    devices_needed: int
    seconds_per_beam: float
    cpu_equivalent: int

    def summary(self) -> str:
        """The Sec. V-D style sentence."""
        return (
            f"{self.setup_name} ({self.n_dms} DMs x {self.n_beams} beams): "
            f"{self.devices_needed} x {self.device_name} "
            f"({self.beams_per_device} beams each, "
            f"{self.seconds_per_beam:.3f} s/beam) "
            f"vs ~{self.cpu_equivalent} CPUs"
        )


def accelerators_needed(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_beams: int,
    device_memory_bytes: int = DEFAULT_DEVICE_MEMORY,
) -> DeploymentPlan:
    """Size a deployment: devices for ``n_beams`` beams in real time."""
    require_positive_int(n_beams, "n_beams")
    scheduler = MultiBeamScheduler(
        device, setup, grid, device_memory_bytes=device_memory_bytes
    )
    assignment = scheduler.assign(n_beams)

    cpu = CPUModel(xeon_e5_2620()).simulate(setup, grid)
    # A CPU hosts floor(1 / t) beams; if it cannot even hold one, count
    # the fractional shortfall as extra CPUs per beam.
    beams_per_cpu = 1.0 / cpu.seconds
    cpu_equivalent = ceil_div(n_beams, max(int(beams_per_cpu), 1)) if (
        beams_per_cpu >= 1.0
    ) else int(n_beams * cpu.seconds + 0.5)

    return DeploymentPlan(
        device_name=device.name,
        setup_name=setup.name,
        n_dms=grid.n_dms,
        n_beams=n_beams,
        beams_per_device=assignment.beams_per_device,
        devices_needed=assignment.devices_needed,
        seconds_per_beam=assignment.seconds_per_beam,
        cpu_equivalent=cpu_equivalent,
    )


def execute_deployment(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_beams: int,
    duration_s: float = 1.0,
    device_memory_bytes: int = DEFAULT_DEVICE_MEMORY,
    **engine_kwargs,
):
    """Size a deployment, then actually run it through :mod:`repro.sched`.

    Returns ``(plan, report)``: the Sec. V-D sizing plus the simulated
    execution that demonstrates (or, under injected faults, stresses)
    it — ``report.realtime_sustained`` is the empirical verdict the
    static plan only asserts.  Engine keywords — ``seed``, ``faults``,
    ``steal`` … — pass through.
    """
    from repro.sched import ExecutionEngine  # local: sched sits above pipeline

    plan = accelerators_needed(
        device, setup, grid, n_beams, device_memory_bytes=device_memory_bytes
    )
    engine = ExecutionEngine(
        [(device, plan.devices_needed, device_memory_bytes)],
        setup,
        grid,
        n_beams,
        duration_s,
        **engine_kwargs,
    )
    report = engine.run()
    get_registry().gauge(
        "repro_pipeline_realtime_margin",
        stage="fleet-run",
        device=device.name,
        setup=setup.name,
    ).set(report.realtime_margin)
    return plan, report


def apertif_deployment(
    device: DeviceSpec | None = None,
    n_dms: int = 2000,
    n_beams: int = 450,
) -> DeploymentPlan:
    """The paper's worked example: Apertif, 2,000 DMs, 450 beams, HD7970."""
    grid = DMTrialGrid(n_dms=n_dms)
    return accelerators_needed(device or hd7970(), apertif(), grid, n_beams)
