"""Real-time survey pipeline: streaming, multi-beam scheduling, sizing."""

from repro.pipeline.streaming import StreamingDedispersion, ChunkResult
from repro.pipeline.multibeam import BeamAssignment, MultiBeamScheduler
from repro.pipeline.survey import SurveyPipeline, SurveyReport, BeamResult
from repro.pipeline.fleet import FleetDevice, FleetPlan, execute_plan, plan_fleet
from repro.pipeline.realtime import (
    RealtimeReport,
    realtime_report,
    accelerators_needed,
    apertif_deployment,
    execute_deployment,
    DeploymentPlan,
)

__all__ = [
    "SurveyPipeline",
    "SurveyReport",
    "BeamResult",
    "FleetDevice",
    "FleetPlan",
    "execute_plan",
    "plan_fleet",
    "StreamingDedispersion",
    "ChunkResult",
    "BeamAssignment",
    "MultiBeamScheduler",
    "RealtimeReport",
    "realtime_report",
    "accelerators_needed",
    "apertif_deployment",
    "execute_deployment",
    "DeploymentPlan",
]
