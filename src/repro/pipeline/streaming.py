"""Streaming dedispersion: process an endless observation chunk by chunk.

Modern telescopes cannot store their streams ("the data streams are too
large to store in memory or on disk", Sec. I), so dedispersion must consume
fixed-length chunks as they arrive.  Each chunk carries an overlap region —
the maximum dispersion delay — so that its final output samples can be
computed without waiting for future data; concatenating the per-chunk
outputs is then bit-identical to dedispersing the whole observation at
once, a property the integration tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.telescope import StreamChunk
from repro.core.plan import DedispersionPlan
from repro.errors import PipelineError
from repro.obs import get_registry, span


@dataclass(frozen=True)
class ChunkResult:
    """Dedispersed output of one stream chunk."""

    beam_index: int
    sequence: int
    output: np.ndarray  # (n_dms, samples)
    simulated_seconds: float
    realtime: bool


class StreamingDedispersion:
    """Drives a :class:`DedispersionPlan` over a chunked stream.

    The plan's batch length must equal the chunk payload; the chunk overlap
    must cover the plan's maximum delay.  Both are checked per chunk so a
    misconfigured front-end fails loudly rather than producing silently
    wrong tails.  ``backend`` pins the kernel executor for every chunk
    (default: the plan's auto-selection — see
    :mod:`repro.opencl_sim.backend`).
    """

    def __init__(self, plan: DedispersionPlan, backend: str | None = None):
        self.plan = plan
        self.backend = backend
        self._chunk_seconds = plan.samples / plan.setup.samples_per_second
        self.processed = 0

    @property
    def max_delay(self) -> int:
        """Input overlap (samples) the plan requires of every chunk."""
        return int(self.plan.delays.max(initial=0))

    def process(self, chunk: StreamChunk) -> ChunkResult:
        """Dedisperse one chunk; returns its :class:`ChunkResult`.

        Each chunk is one ``pipeline.dedisperse`` span; the modelled
        real-time margin (chunk seconds / predicted kernel seconds)
        lands in the ``repro_pipeline_realtime_margin`` gauge.
        """
        if chunk.samples != self.plan.samples:
            raise PipelineError(
                f"chunk payload of {chunk.samples} samples does not match "
                f"the plan batch of {self.plan.samples}"
            )
        if chunk.overlap < self.max_delay:
            raise PipelineError(
                f"chunk overlap {chunk.overlap} < required maximum delay "
                f"{self.max_delay}"
            )
        labels = {
            "device": self.plan.device.name,
            "setup": self.plan.setup.name,
        }
        from repro.run import ExecutionRequest, execute

        with span(
            "pipeline.dedisperse",
            beam=chunk.beam_index,
            sequence=chunk.sequence,
            **labels,
        ):
            output = execute(
                ExecutionRequest(
                    data=chunk.data, plan=self.plan, backend=self.backend
                )
            ).output
        seconds = self.plan.predict().seconds
        self.processed += 1
        registry = get_registry()
        registry.counter("repro_pipeline_chunks_total", **labels).inc()
        if seconds > 0.0:
            registry.gauge(
                "repro_pipeline_realtime_margin", stage="dedisperse", **labels
            ).set(self._chunk_seconds / seconds)
        return ChunkResult(
            beam_index=chunk.beam_index,
            sequence=chunk.sequence,
            output=output,
            simulated_seconds=seconds,
            realtime=seconds <= self._chunk_seconds,
        )

    def process_stream(self, chunks) -> list[ChunkResult]:
        """Dedisperse every chunk of an iterable, in order."""
        return [self.process(chunk) for chunk in chunks]
