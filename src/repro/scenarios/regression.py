"""The golden regression harness: scenarios × backends × setups.

Runs every catalogue scenario through the full pipeline — chunk
generation, :func:`repro.run.execute` dedispersion, matched-filter
detection, sifting (:class:`~repro.search.stream.StreamingSearch`) — on
each benchmark setup and kernel backend, then:

* asserts **bit-identical backend parity** per (scenario, setup) cell:
  the tiled and vectorized executors must produce the same candidates,
  verdicts and ledger, compared exactly (``rtol=0``);
* in ``check`` mode, compares each cell against its committed golden
  under ``results/goldens/`` with the tolerant comparator of
  :mod:`repro.scenarios.goldens` (riboviz-style: regenerate, diff,
  fail loudly with the JSONPath of every deviation);
* in ``record`` mode, (re)writes the goldens;
* scores recall / false-positive rate per scenario
  (:func:`repro.scenarios.truth.score_report`) and aggregates everything
  into the BENCH_scenarios.json document.

Cell documents contain **no wall-clock fields** (no timings, no
throughputs): they are a pure function of (scenario, setup, seed, code),
which is what makes committing them to version control meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.errors import ValidationError
from repro.hardware import device_by_name
from repro.obs import get_registry, span
from repro.scenarios.catalog import (
    RealizedScenario,
    Scenario,
    scenario_catalog,
)
from repro.scenarios.goldens import (
    DEFAULT_GOLDENS_DIR,
    compare_documents,
    golden_path,
    load_golden,
    save_golden,
)
from repro.scenarios.truth import ScenarioScore, score_report
from repro.search.stream import SearchReport, StreamingSearch

#: Kernel backends every cell runs under (parity is asserted pairwise).
DEFAULT_BACKENDS = ("tiled", "vectorized")

#: Matrix run modes.
MATRIX_MODES = ("run", "record", "check")


@dataclass(frozen=True)
class ScenarioSetup:
    """One benchmark column of the matrix: setup + grid + tuned config.

    Laptop-scale analogues of the paper's two regimes: ``low`` is
    LOFAR-like (low frequency, strong per-trial dispersion), ``high``
    Apertif-like (L-band, weak per-trial dispersion, wider DM steps so
    trials stay distinguishable).  The pinned
    :class:`~repro.core.config.KernelConfiguration` satisfies the
    device's meaningful-configuration constraints for both, keeping
    plan construction cheap and deterministic.
    """

    key: str
    setup: ObservationSetup
    grid: DMTrialGrid
    config: KernelConfiguration
    device_name: str = "HD7970"

    def plan(self):
        """A tuned plan for this column (no auto-tuning sweep)."""
        from repro.core.plan import DedispersionPlan

        return DedispersionPlan.create(
            self.setup,
            self.grid,
            device_by_name(self.device_name),
            config=self.config,
            samples=self.setup.samples_per_batch,
        )


#: The two benchmark columns of the matrix.
SCENARIO_SETUPS: tuple[ScenarioSetup, ...] = (
    ScenarioSetup(
        key="low",
        setup=ObservationSetup(
            name="scenario-low",
            channels=16,
            lowest_frequency=140.0,
            channel_bandwidth=0.2,
            samples_per_second=400,
            samples_per_batch=400,
        ),
        grid=DMTrialGrid(n_dms=12, first=1.0, step=1.0),
        config=KernelConfiguration(16, 4, 5, 3),
    ),
    ScenarioSetup(
        key="high",
        setup=ObservationSetup(
            name="scenario-high",
            channels=32,
            lowest_frequency=1420.0,
            channel_bandwidth=2.0,
            samples_per_second=480,
            samples_per_batch=480,
        ),
        grid=DMTrialGrid(n_dms=12, first=25.0, step=25.0),
        config=KernelConfiguration(16, 4, 5, 3),
    ),
)


def setup_by_key(key: str) -> ScenarioSetup:
    """Look a benchmark column up by key; raises on unknown keys."""
    for candidate in SCENARIO_SETUPS:
        if candidate.key == key:
            return candidate
    known = ", ".join(s.key for s in SCENARIO_SETUPS)
    raise ValidationError(f"unknown setup key {key!r}; known: {known}")


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellResult:
    """One (scenario, setup, backend) execution with its artefacts."""

    scenario: str
    setup_key: str
    backend: str
    report: SearchReport
    score: ScenarioScore
    document: dict


def _candidate_doc(candidate) -> dict:
    return {
        "dm_index": int(candidate.dm_index),
        "dm": float(candidate.dm),
        "snr": float(candidate.snr),
        "time_sample": int(candidate.time_sample),
        "width": int(candidate.width),
    }


def _cluster_doc(cluster) -> dict:
    return {
        "best": _candidate_doc(cluster.best),
        "n_members": int(cluster.n_members),
        "dm_extent": float(cluster.dm_extent),
        "members": [_candidate_doc(m) for m in cluster.members],
    }


def cell_document(
    realized: RealizedScenario,
    report: SearchReport,
    score: ScenarioScore,
) -> dict:
    """The deterministic, golden-worthy record of one cell."""
    return {
        "scenario": realized.name,
        "setup": realized.setup.name,
        "grid": {
            "n_dms": int(realized.grid.n_dms),
            "first": float(realized.grid.first),
            "step": float(realized.grid.step),
        },
        "seed": int(realized.seed),
        "n_chunks": int(realized.n_chunks),
        "truth": realized.truth.as_dict(),
        "ledger": report.verdict_payload(),
        "accepted": [_cluster_doc(c) for c in report.result.accepted],
        "vetoed": [
            {"reason": v.reason, "cluster": _cluster_doc(v.cluster)}
            for v in report.result.vetoed
        ],
        "score": score.as_dict(),
    }


def run_cell(
    scenario: Scenario,
    column: ScenarioSetup,
    backend: str,
    seed: int | None = None,
    plan=None,
) -> CellResult:
    """Execute one (scenario, setup, backend) cell end to end."""
    realized = scenario.realize(column.setup, column.grid, seed=seed)
    if plan is None:
        plan = column.plan()
    labels = {
        "scenario": scenario.name,
        "setup": column.key,
        "backend": backend,
    }
    with span("scenario.cell", **labels):
        report = StreamingSearch(
            plan, realized.search_config, backend=backend
        ).run(iter(realized.chunks))
    score = score_report(scenario.name, realized.truth, report)
    registry = get_registry()
    registry.counter(
        "repro_scenario_cells_total",
        outcome="passed" if score.passed else "failed",
        **labels,
    ).inc()
    registry.histogram(
        "repro_scenario_recall_ratio",
        scenario=scenario.name,
        setup=column.key,
    ).observe(score.recall)
    registry.histogram(
        "repro_scenario_false_positive_ratio",
        scenario=scenario.name,
        setup=column.key,
    ).observe(score.false_positive_rate)
    return CellResult(
        scenario=scenario.name,
        setup_key=column.key,
        backend=backend,
        report=report,
        score=score,
        document=cell_document(realized, report, score),
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MatrixReport:
    """Everything one matrix run produced, with the acceptance verdicts."""

    mode: str
    cells: tuple[CellResult, ...]
    parity_failures: tuple[str, ...]
    golden_diffs: tuple[str, ...]
    goldens_dir: str

    @property
    def scores(self) -> tuple[ScenarioScore, ...]:
        """One score per (scenario, setup) cell (backends are identical)."""
        return tuple(
            c.score for c in self.cells if c.backend == self.cells[0].backend
        )

    @property
    def cells_failed(self) -> tuple[CellResult, ...]:
        return tuple(c for c in self.cells if not c.score.passed)

    @property
    def passed(self) -> bool:
        """The standing gate: scores, parity and (in check mode) goldens."""
        return (
            not self.cells_failed
            and not self.parity_failures
            and not self.golden_diffs
        )

    def summary(self) -> str:
        """Multi-line, human-readable matrix report."""
        n_scenarios = len({c.scenario for c in self.cells})
        n_setups = len({c.setup_key for c in self.cells})
        n_backends = len({c.backend for c in self.cells})
        lines = [
            f"scenario matrix ({self.mode}): {n_scenarios} scenarios x "
            f"{n_setups} setups x {n_backends} backends = "
            f"{len(self.cells)} cells — "
            f"{'PASS' if self.passed else 'FAIL'}",
        ]
        seen = set()
        for cell in self.cells:
            key = (cell.scenario, cell.setup_key)
            if key in seen:
                continue
            seen.add(key)
            s = cell.score
            lines.append(
                f"  {cell.scenario:22s} {cell.setup_key:5s} "
                f"recall {s.recall:.2f}  fp {s.false_positive_rate:.2f}  "
                f"accepted {s.n_accepted}  vetoed {s.n_vetoed}  "
                f"verdict {s.verdict:18s} "
                f"{'ok' if s.passed else 'FAIL'}"
            )
        for failure in self.parity_failures:
            lines.append(f"  backend parity FAIL: {failure}")
        for diff in self.golden_diffs[:20]:
            lines.append(f"  golden diff: {diff}")
        if len(self.golden_diffs) > 20:
            lines.append(
                f"  ... and {len(self.golden_diffs) - 20} more golden diffs"
            )
        return "\n".join(lines)

    def bench_document(self) -> dict:
        """The BENCH_scenarios.json payload."""
        per_scenario: dict[str, dict] = {}
        for cell in self.cells:
            entry = per_scenario.setdefault(
                cell.scenario, {"setups": {}, "truth_bearing": False}
            )
            if cell.setup_key not in entry["setups"]:
                entry["setups"][cell.setup_key] = cell.score.as_dict()
            entry["truth_bearing"] = (
                entry["truth_bearing"] or cell.score.n_expected > 0
            )
        return {
            "bench": "scenarios",
            "mode": self.mode,
            "backends": sorted({c.backend for c in self.cells}),
            "setups": sorted({c.setup_key for c in self.cells}),
            "n_cells": len(self.cells),
            "scenarios": per_scenario,
            "parity_failures": list(self.parity_failures),
            "golden_diffs": list(self.golden_diffs),
            "passed": self.passed,
        }


def run_matrix(
    scenarios: tuple[Scenario, ...] | None = None,
    setups: tuple[ScenarioSetup, ...] | None = None,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    seed: int | None = None,
    goldens_dir: str | Path | None = None,
    mode: str = "run",
) -> MatrixReport:
    """Run the (scenario × setup × backend) matrix; see module docstring."""
    if mode not in MATRIX_MODES:
        raise ValidationError(
            f"unknown matrix mode {mode!r}; expected one of "
            f"{', '.join(MATRIX_MODES)}"
        )
    if not backends:
        raise ValidationError("the matrix needs at least one backend")
    scenarios = tuple(
        scenario_catalog() if scenarios is None else scenarios
    )
    setups = tuple(SCENARIO_SETUPS if setups is None else setups)
    root = Path(
        DEFAULT_GOLDENS_DIR if goldens_dir is None else goldens_dir
    )
    cells: list[CellResult] = []
    parity_failures: list[str] = []
    golden_diffs: list[str] = []
    with span("scenario.matrix", mode=mode):
        for column in setups:
            plan = column.plan()
            for scenario in scenarios:
                per_backend = [
                    run_cell(scenario, column, b, seed=seed, plan=plan)
                    for b in backends
                ]
                cells.extend(per_backend)
                reference = per_backend[0]
                for other in per_backend[1:]:
                    exact = compare_documents(
                        reference.document,
                        other.document,
                        rtol=0.0,
                        atol=0.0,
                    )
                    if exact:
                        parity_failures.append(
                            f"{scenario.name}/{column.key}: "
                            f"{reference.backend} vs {other.backend}: "
                            f"{exact[0]}"
                        )
                path = golden_path(root, column.key, scenario.name)
                if mode == "record":
                    save_golden(reference.document, path)
                elif mode == "check":
                    golden = load_golden(path)
                    for diff in compare_documents(
                        golden, reference.document
                    ):
                        golden_diffs.append(
                            f"{scenario.name}/{column.key}: {diff}"
                        )
    return MatrixReport(
        mode=mode,
        cells=tuple(cells),
        parity_failures=tuple(parity_failures),
        golden_diffs=tuple(golden_diffs),
        goldens_dir=str(root),
    )
