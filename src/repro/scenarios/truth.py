"""Machine-checkable ground truth and scoring for scenario runs.

A :class:`GroundTruth` states, for one realized scenario, what the
pipeline *must* find (expected candidates at known DM trials and event
times), must *not* find (``expect_empty``), which real-time verdict the
stream must end in, and which input-stream faults (missing / duplicated
chunk sequences) the drop accounting must surface.

:func:`score_report` turns a :class:`~repro.search.stream.SearchReport`
plus its truth into a :class:`ScenarioScore` with the two headline
numbers of the acceptance gate — recall and false-positive rate — and
the boolean side-conditions (verdict, emptiness, fault accounting).

Matching policy
---------------
A bright dispersed pulse is detected across a *cone* of neighbouring DM
trials (DM-mismatch smearing halves, it does not annihilate), and the
per-trial noise estimate is itself inflated by the signal at the true
trial, so the strongest member of a sifted cluster is not reliably the
true trial.  The harness therefore matches on **membership**: an
expected candidate is recovered when some accepted cluster contains a
member within ``trial_tolerance`` trials of the expected trial at
``min_snr`` or better.  Conversely an accepted cluster is a *false
positive* only when it matches no expected candidate by that rule **and**
its peak time lies outside ``time_tolerance`` samples of every true
event time — i.e. it is attributable to nothing that was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ValidationError
from repro.search.stream import SearchReport

#: The acceptance gate on truth-bearing scenarios (ISSUE 7): at least
#: this fraction of expected candidates must be recovered ...
RECALL_FLOOR = 0.9
#: ... and at most this fraction of accepted clusters may be
#: unattributable to any injected component.
FALSE_POSITIVE_CEILING = 0.05


@dataclass(frozen=True)
class ExpectedCandidate:
    """One signal the search must recover.

    ``trial`` is the index of the true DM on the scenario's trial grid;
    ``time_samples`` the reference-frame sample positions of the emitted
    events (used only for false-positive attribution, not for recall).
    """

    dm: float
    trial: int
    time_samples: tuple[int, ...] = ()
    trial_tolerance: int = 2
    time_tolerance: int = 64
    min_snr: float = 6.0

    def __post_init__(self) -> None:
        if self.trial < 0:
            raise ValidationError("expected trial index must be non-negative")
        if self.trial_tolerance < 0 or self.time_tolerance < 0:
            raise ValidationError("tolerances must be non-negative")

    def matches_cluster(self, cluster) -> bool:
        """Membership rule: any member near the true trial at min_snr."""
        return any(
            abs(member.dm_index - self.trial) <= self.trial_tolerance
            and member.snr >= self.min_snr
            for member in cluster.members
        )

    def attributable(self, cluster) -> bool:
        """Time rule: the cluster peaks near one of this signal's events."""
        best = cluster.best
        return any(
            abs(best.time_sample - t) <= self.time_tolerance
            for t in self.time_samples
        )

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "dm": float(self.dm),
            "trial": int(self.trial),
            "time_samples": [int(t) for t in self.time_samples],
            "trial_tolerance": int(self.trial_tolerance),
            "time_tolerance": int(self.time_tolerance),
            "min_snr": float(self.min_snr),
        }


@dataclass(frozen=True)
class GroundTruth:
    """Everything a scenario run is scored against."""

    expected: tuple[ExpectedCandidate, ...] = ()
    expect_empty: bool = False
    expected_verdict: str | None = None
    missing_sequences: tuple[int, ...] = ()
    duplicate_sequences: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.expect_empty and self.expected:
            raise ValidationError(
                "expect_empty conflicts with expected candidates"
            )
        object.__setattr__(self, "expected", tuple(self.expected))

    @property
    def truth_bearing(self) -> bool:
        """Whether the scenario injects something the search must find."""
        return bool(self.expected)

    def with_faults(
        self,
        missing: tuple[int, ...],
        duplicates: tuple[int, ...],
    ) -> "GroundTruth":
        """A copy carrying the realized input-stream fault sequences."""
        return replace(
            self,
            missing_sequences=tuple(missing),
            duplicate_sequences=tuple(duplicates),
        )

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "expected": [e.as_dict() for e in self.expected],
            "expect_empty": self.expect_empty,
            "expected_verdict": self.expected_verdict,
            "missing_sequences": [int(s) for s in self.missing_sequences],
            "duplicate_sequences": [
                int(s) for s in self.duplicate_sequences
            ],
        }


@dataclass(frozen=True)
class ScenarioScore:
    """The scored outcome of one (scenario, setup, backend) cell."""

    scenario: str
    recall: float
    false_positive_rate: float
    n_expected: int
    n_matched: int
    n_accepted: int
    n_false_positive: int
    n_vetoed: int
    empty_ok: bool
    verdict_ok: bool
    faults_ok: bool
    verdict: str

    @property
    def passed(self) -> bool:
        """Whether the cell clears every acceptance threshold."""
        return (
            self.recall >= RECALL_FLOOR
            and self.false_positive_rate <= FALSE_POSITIVE_CEILING
            and self.empty_ok
            and self.verdict_ok
            and self.faults_ok
        )

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "scenario": self.scenario,
            "recall": float(self.recall),
            "false_positive_rate": float(self.false_positive_rate),
            "n_expected": int(self.n_expected),
            "n_matched": int(self.n_matched),
            "n_accepted": int(self.n_accepted),
            "n_false_positive": int(self.n_false_positive),
            "n_vetoed": int(self.n_vetoed),
            "empty_ok": self.empty_ok,
            "verdict_ok": self.verdict_ok,
            "faults_ok": self.faults_ok,
            "verdict": self.verdict,
            "passed": self.passed,
        }


def score_report(
    scenario: str, truth: GroundTruth, report: SearchReport
) -> ScenarioScore:
    """Score one search run against its ground truth."""
    accepted = report.result.accepted
    matched = sum(
        1
        for expected in truth.expected
        if any(expected.matches_cluster(c) for c in accepted)
    )
    false_positives = sum(
        1
        for cluster in accepted
        if not any(
            e.matches_cluster(cluster) or e.attributable(cluster)
            for e in truth.expected
        )
    )
    recall = matched / len(truth.expected) if truth.expected else 1.0
    fp_rate = false_positives / len(accepted) if accepted else 0.0
    empty_ok = not truth.expect_empty or not accepted
    verdict_ok = (
        truth.expected_verdict is None
        or report.verdict == truth.expected_verdict
    )
    faults_ok = (
        report.missing_sequences == truth.missing_sequences
        and report.duplicate_sequences == truth.duplicate_sequences
    )
    return ScenarioScore(
        scenario=scenario,
        recall=recall,
        false_positive_rate=fp_rate,
        n_expected=len(truth.expected),
        n_matched=matched,
        n_accepted=len(accepted),
        n_false_positive=false_positives,
        n_vetoed=len(report.result.vetoed),
        empty_ok=empty_ok,
        verdict_ok=verdict_ok,
        faults_ok=faults_ok,
        verdict=report.verdict,
    )
