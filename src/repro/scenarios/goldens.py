"""Golden regression files: tolerant comparison and versioned storage.

A *golden* is the committed, version-controlled record of what one
(scenario × setup) cell produced: the accepted candidate clusters, the
vetoed clusters, the verdict, the drop/fault ledger and the score.  The
``check`` mode of :mod:`repro.scenarios.regression` re-runs the cell and
compares against the golden with :func:`compare_documents` — exact for
structure, strings, integers and booleans, tolerant
(``rtol``/``atol``, numpy.isclose semantics) for floats, so a golden
survives harmless floating-point drift (library upgrades, FMA
differences) but fails loudly on real behaviour change.

Documents are timestamp-free and serialised with sorted keys, the same
byte-determinism contract as :mod:`repro.tune.study`: the golden bytes
are a pure function of (scenario, setup, seed, code).  ``schema``
versioning matches the rest of the repo — files written by a newer
repro raise :class:`~repro.errors.SchemaVersionError` instead of being
misread (and are left untouched on disk).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SchemaVersionError, ValidationError

#: Version stamp written into every golden document.
GOLDEN_SCHEMA_VERSION: int = 1
#: Schemas this build can read.
SUPPORTED_GOLDEN_SCHEMAS = (1,)

#: Default float tolerances of the comparator (numpy.isclose semantics).
DEFAULT_RTOL = 1e-5
DEFAULT_ATOL = 1e-8

#: Repo-relative home of the committed goldens.
DEFAULT_GOLDENS_DIR = Path("results") / "goldens"


def golden_path(root: str | Path, setup_key: str, scenario: str) -> Path:
    """Where the golden for one (setup, scenario) cell lives."""
    return Path(root) / setup_key / f"{scenario}.json"


def save_golden(document: dict, path: str | Path) -> Path:
    """Write a golden document (sorted keys, schema-stamped)."""
    if not isinstance(document, dict):
        raise ValidationError("a golden document must be a dict")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    stamped = {"schema": GOLDEN_SCHEMA_VERSION, **document}
    path.write_text(json.dumps(stamped, indent=1, sort_keys=True) + "\n")
    return path


def load_golden(path: str | Path) -> dict:
    """Read a golden document, enforcing the schema contract."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(
            f"no golden at {path} — record it first with "
            f"'repro scenarios record'"
        )
    document = json.loads(path.read_text())
    schema = document.get("schema")
    if schema not in SUPPORTED_GOLDEN_SCHEMAS:
        if isinstance(schema, int) and schema > max(
            SUPPORTED_GOLDEN_SCHEMAS
        ):
            raise SchemaVersionError(
                f"unsupported golden schema {schema!r} in {path}: this "
                f"file was written by a newer version of repro (this "
                f"build reads schemas up to "
                f"{max(SUPPORTED_GOLDEN_SCHEMAS)})"
            )
        raise ValidationError(
            f"unsupported golden schema {schema!r} in {path}"
        )
    document.pop("schema")
    return document


# ----------------------------------------------------------------------
# Tolerant comparison
# ----------------------------------------------------------------------
def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_documents(
    expected,
    actual,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    path: str = "$",
) -> list[str]:
    """Structural diff of two JSON-ready documents; empty means equal.

    * dict / list structure, strings and booleans compare exactly;
    * two numbers compare with ``|e - a| <= atol + rtol * |e|`` when
      either side is a float (``rtol=0, atol=0`` makes floats exact
      too — the round-trip property test uses that);
    * an int never matches a bool (JSON distinguishes them and so do
      candidate counts vs flags).

    Returns human-readable difference strings, each prefixed with the
    JSONPath-ish location, so a failing golden check says *where*.
    """
    diffs: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                diffs.append(f"{path}.{key}: unexpected key")
            elif key not in actual:
                diffs.append(f"{path}.{key}: missing key")
            else:
                diffs.extend(
                    compare_documents(
                        expected[key], actual[key], rtol, atol,
                        f"{path}.{key}",
                    )
                )
        return diffs
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            diffs.append(
                f"{path}: length {len(actual)} != expected {len(expected)}"
            )
            return diffs
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs.extend(
                compare_documents(e, a, rtol, atol, f"{path}[{i}]")
            )
        return diffs
    if isinstance(expected, bool) or isinstance(actual, bool):
        if expected is not actual:
            diffs.append(f"{path}: {actual!r} != expected {expected!r}")
        return diffs
    if _is_number(expected) and _is_number(actual):
        if isinstance(expected, int) and isinstance(actual, int):
            if expected != actual:
                diffs.append(
                    f"{path}: {actual!r} != expected {expected!r}"
                )
        elif not abs(actual - expected) <= atol + rtol * abs(expected):
            diffs.append(
                f"{path}: {actual!r} != expected {expected!r} "
                f"(rtol={rtol}, atol={atol})"
            )
        return diffs
    if type(expected) is not type(actual) or expected != actual:
        diffs.append(f"{path}: {actual!r} != expected {expected!r}")
    return diffs
