"""The scenario catalogue: seeded hostile-input generators with truth.

Each :class:`Scenario` composes :mod:`repro.astro.source` generators
under :class:`~repro.utils.rng.RandomStreams` and, when realized against
a concrete (setup, grid) pair, yields overlapped
:class:`~repro.astro.telescope.StreamChunk` data plus a
:class:`~repro.scenarios.truth.GroundTruth`.  Realization is
byte-deterministic: the stream seed is derived from
``(seed, "scenario", name, setup.name)``, so the same cell always
produces the same bytes — the property the golden regression harness
(:mod:`repro.scenarios.regression`) and its hypothesis tests rely on.

The catalogue covers the hostile-input envelope of a real deployment
(Sclocco et al. 2016): a clean control pulse, an RFI storm under
mitigation, scintillating / nulling / giant-pulse emission, a DM-smeared
wideband burst, input-stream faults (dropped + duplicated chunks, reusing
:class:`~repro.sched.faults.FaultProfile`), a pure noise floor, and a
hostile tuning configuration that drives the bounded queue into
deterministic backpressure.

Scenario sifting policy
-----------------------
Scenarios cluster with ``dm_radius`` spanning the whole trial grid and
the broadband veto disabled (``broadband_veto_fraction=1.0``): a bright
dispersed pulse is legitimately detected across a wide cone of trials,
and time-coincidence clustering folds that cone into one candidate per
physical event.  RFI rejection comes from upstream mitigation (channel
masking + zero-DM filter) and the zero-DM veto, which scenarios keep on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.astro.pulse import gaussian_profile
from repro.astro.signal_gen import SyntheticPulsar
from repro.astro.source import (
    BroadbandRFISource,
    BurstSource,
    BurstTrainSource,
    CompositeSource,
    NarrowbandRFISource,
    NoiseSource,
    PulsarSource,
    SignalSource,
    SignalTruth,
    stream_chunks,
)
from repro.astro.telescope import StreamChunk
from repro.errors import ValidationError
from repro.scenarios.truth import ExpectedCandidate, GroundTruth
from repro.search.sift import SiftPolicy
from repro.search.stream import SearchConfig
from repro.sched.faults import FaultProfile
from repro.utils.rng import RandomStreams, derive_seed

#: Component kinds that owe the search a recoverable candidate.
_SIGNAL_KINDS = ("pulsar", "burst", "burst_train")


@dataclass(frozen=True)
class RealizedScenario:
    """One scenario rendered against a concrete (setup, grid) pair."""

    name: str
    setup: ObservationSetup
    grid: DMTrialGrid
    seed: int
    chunks: tuple[StreamChunk, ...]
    truth: GroundTruth
    signal_truth: SignalTruth
    search_config: SearchConfig

    @property
    def n_chunks(self) -> int:
        """Chunks actually delivered (after input-stream faults)."""
        return len(self.chunks)


@dataclass(frozen=True)
class Scenario:
    """A named, seeded scenario generator.

    ``build`` maps ``(setup, grid, streams)`` to the
    :class:`~repro.astro.source.SignalSource` the scenario observes;
    the expected candidates are derived automatically from the source's
    :class:`~repro.astro.source.SignalTruth` (every dispersed component
    becomes one :class:`~repro.scenarios.truth.ExpectedCandidate` at its
    grid trial).  ``faults`` injects input-stream chunk faults the way
    :mod:`repro.sched` injects shard faults: ``crashes`` chunks are
    dropped from the stream, ``stragglers`` chunks are delivered twice
    (a re-sent network packet), never sequence 0 and drawn from the
    scenario's own seeded stream.
    """

    name: str
    description: str
    build: Callable[
        [ObservationSetup, DMTrialGrid, RandomStreams], SignalSource
    ]
    n_chunks: int = 4
    seed: int = 0
    rfi_mitigation: bool = False
    queue_capacity: int = 4
    service_floor_cadences: float = 0.0
    faults: FaultProfile = FaultProfile.none()
    expect_empty: bool = False
    expected_verdict: str | None = None
    trial_tolerance: int = 2
    min_snr: float = 6.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("a scenario needs a name")
        if self.n_chunks < 1:
            raise ValidationError("n_chunks must be >= 1")

    # ------------------------------------------------------------------
    def sift_policy(self, grid: DMTrialGrid) -> SiftPolicy:
        """The scenario clustering policy (module docstring rationale)."""
        return SiftPolicy(
            dm_radius=float(grid.last - grid.first),
            time_slack=16,
            zero_dm_veto=True,
            broadband_veto_fraction=1.0,
        )

    def search_config(
        self, setup: ObservationSetup, grid: DMTrialGrid
    ) -> SearchConfig:
        """The :class:`~repro.search.stream.SearchConfig` of this scenario."""
        chunk_seconds = setup.samples_per_batch / setup.samples_per_second
        return SearchConfig(
            sift_policy=self.sift_policy(grid),
            rfi_mitigation=self.rfi_mitigation,
            queue_capacity=self.queue_capacity,
            min_service_seconds=self.service_floor_cadences * chunk_seconds,
        )

    # ------------------------------------------------------------------
    def realize(
        self,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        seed: int | None = None,
    ) -> RealizedScenario:
        """Render data + truth for one (setup, grid) cell."""
        root = self.seed if seed is None else seed
        streams = RandomStreams(
            derive_seed(root, "scenario", self.name, setup.name)
        )
        source = self.build(setup, grid, streams.spawn("build"))
        chunks, signal_truth = stream_chunks(
            source, setup, grid, self.n_chunks, streams.spawn("signal")
        )
        chunks, missing, duplicates = _apply_chunk_faults(
            chunks, self.faults, streams.spawn("faults")
        )
        truth = GroundTruth(
            expected=self._expected(grid, signal_truth),
            expect_empty=self.expect_empty,
            expected_verdict=self.expected_verdict,
        ).with_faults(missing, duplicates)
        return RealizedScenario(
            name=self.name,
            setup=setup,
            grid=grid,
            seed=root,
            chunks=chunks,
            truth=truth,
            signal_truth=signal_truth,
            search_config=self.search_config(setup, grid),
        )

    def _expected(
        self, grid: DMTrialGrid, signal_truth: SignalTruth
    ) -> tuple[ExpectedCandidate, ...]:
        if self.expect_empty:
            return ()
        return tuple(
            ExpectedCandidate(
                dm=component.dm,
                trial=grid.index_of(component.dm),
                time_samples=component.time_samples,
                trial_tolerance=self.trial_tolerance,
                min_snr=self.min_snr,
            )
            for component in signal_truth.components
            if component.kind in _SIGNAL_KINDS and component.dm is not None
        )


def _apply_chunk_faults(
    chunks: tuple[StreamChunk, ...],
    faults: FaultProfile,
    streams: RandomStreams,
) -> tuple[tuple[StreamChunk, ...], tuple[int, ...], tuple[int, ...]]:
    """Drop / duplicate chunks per the fault profile, never sequence 0.

    Reuses the scheduler's fault vocabulary: ``crashes`` upstream links
    lose their chunk entirely, ``stragglers`` re-deliver theirs (the
    duplicate arrives immediately after the original, as a retransmit
    does).  Draws come from the scenario's own seeded stream, so the
    fault pattern is part of the scenario's identity.
    """
    if faults.is_benign or len(chunks) < 2:
        return chunks, (), ()
    rng = streams.numpy("chunk-faults")
    eligible = np.arange(1, len(chunks))
    n_drop = min(faults.crashes, len(eligible) - 1)
    dropped = set()
    if n_drop > 0:
        dropped = set(
            int(s) for s in rng.choice(eligible, size=n_drop, replace=False)
        )
    survivors = np.asarray(
        [s for s in eligible if s not in dropped], dtype=np.int64
    )
    n_dup = min(faults.stragglers, len(survivors))
    duplicated = set()
    if n_dup > 0:
        duplicated = set(
            int(s) for s in rng.choice(survivors, size=n_dup, replace=False)
        )
    out: list[StreamChunk] = []
    for chunk in chunks:
        if chunk.sequence in dropped:
            continue
        out.append(chunk)
        if chunk.sequence in duplicated:
            out.append(chunk)
    return tuple(out), tuple(sorted(dropped)), tuple(sorted(duplicated))


# ----------------------------------------------------------------------
# The catalogue
# ----------------------------------------------------------------------
def _mid_dm(grid: DMTrialGrid) -> float:
    """The central trial DM — every setup-agnostic scenario injects here."""
    return float(grid.values[grid.n_dms // 2])


def _narrow_pulsar(
    grid: DMTrialGrid, period: float, amplitude: float
) -> PulsarSource:
    """A narrow-profile pulsar (sharp DM discrimination on toy setups)."""
    return PulsarSource(
        SyntheticPulsar(
            period_seconds=period,
            dm=_mid_dm(grid),
            amplitude=amplitude,
            profile=gaussian_profile(width=0.008),
        )
    )


def _build_clean_pulse(setup, grid, streams) -> SignalSource:
    return CompositeSource(
        (NoiseSource(sigma=1.0), _narrow_pulsar(grid, 1.3, 2.0))
    )


def _build_rfi_storm(setup, grid, streams) -> SignalSource:
    return CompositeSource((
        NoiseSource(sigma=1.0),
        _narrow_pulsar(grid, 1.1, 3.0),
        BroadbandRFISource(n_events=5, amplitude=6.0, width=2),
        NarrowbandRFISource(n_channels=2, amplitude=4.0),
    ))


def _build_scintillating(setup, grid, streams) -> SignalSource:
    return CompositeSource((
        NoiseSource(sigma=1.0),
        BurstTrainSource(
            dm=_mid_dm(grid),
            period_seconds=0.9,
            width_seconds=0.01,
            amplitude=3.0,
            modulation_depth=0.8,
            stream="scint",
        ),
    ))


def _build_nulling(setup, grid, streams) -> SignalSource:
    return CompositeSource((
        NoiseSource(sigma=1.0),
        BurstTrainSource(
            dm=_mid_dm(grid),
            period_seconds=0.7,
            width_seconds=0.01,
            amplitude=2.5,
            null_probability=0.5,
            stream="nulling",
        ),
    ))


def _build_giant_pulses(setup, grid, streams) -> SignalSource:
    # Mean pulse sits barely above threshold; only giants are bright.
    return CompositeSource((
        NoiseSource(sigma=1.0),
        BurstTrainSource(
            dm=_mid_dm(grid),
            period_seconds=0.45,
            width_seconds=0.008,
            amplitude=0.8,
            giant_probability=0.35,
            giant_factor=6.0,
            stream="giants",
        ),
    ))


def _build_dm_smeared(setup, grid, streams) -> SignalSource:
    # A wide burst near the top of the grid: maximal intra-channel
    # smearing, the regime where trial discrimination is weakest.
    return CompositeSource((
        NoiseSource(sigma=1.0),
        BurstSource(
            dm=float(grid.values[-2]),
            time_seconds=1.7,
            width_seconds=0.03,
            amplitude=2.0,
        ),
    ))


def _build_steady_train(setup, grid, streams) -> SignalSource:
    return CompositeSource((
        NoiseSource(sigma=1.0),
        BurstTrainSource(
            dm=_mid_dm(grid),
            period_seconds=0.8,
            width_seconds=0.01,
            amplitude=2.5,
            stream="steady",
        ),
    ))


def _build_noise(setup, grid, streams) -> SignalSource:
    return NoiseSource(sigma=1.0)


def scenario_catalog() -> tuple[Scenario, ...]:
    """The full catalogue, documentation order."""
    return (
        Scenario(
            name="clean_pulse",
            description="control: one narrow periodic pulse at the central "
            "trial DM in clean Gaussian noise",
            build=_build_clean_pulse,
        ),
        Scenario(
            name="rfi_storm",
            description="narrowband carriers + impulsive broadband RFI over "
            "a pulsar, searched with mitigation on",
            build=_build_rfi_storm,
            rfi_mitigation=True,
        ),
        Scenario(
            name="scintillating_pulsar",
            description="burst train with deep per-pulse amplitude "
            "scintillation (factor 0.2-1.8)",
            build=_build_scintillating,
        ),
        Scenario(
            name="nulling_pulsar",
            description="burst train nulled pulse-by-pulse with "
            "probability 0.5 (pulse 0 always emitted)",
            build=_build_nulling,
        ),
        Scenario(
            name="giant_pulse_train",
            description="weak train whose giant pulses (x6, p=0.35) carry "
            "the detection",
            build=_build_giant_pulses,
        ),
        Scenario(
            name="dm_smeared_wideband",
            description="wide single burst near the top of the DM grid "
            "(maximal smearing, weakest trial discrimination)",
            build=_build_dm_smeared,
        ),
        Scenario(
            name="dropped_chunks",
            description="steady burst train with one chunk lost and one "
            "delivered twice (FaultProfile crashes=1, stragglers=1)",
            build=_build_steady_train,
            faults=FaultProfile(crashes=1, stragglers=1),
        ),
        Scenario(
            name="noise_floor",
            description="pure Gaussian noise: nothing may survive the sift",
            build=_build_noise,
            expect_empty=True,
            expected_verdict="realtime_sustained",
        ),
        Scenario(
            name="hostile_tuning",
            description="noise searched with a hostile tuning: queue "
            "capacity 1 and a service floor of 2.5 cadences force "
            "deterministic backpressure drops",
            build=_build_noise,
            n_chunks=6,
            queue_capacity=1,
            service_floor_cadences=2.5,
            expect_empty=True,
            expected_verdict="degraded",
        ),
    )


def scenario_by_name(name: str) -> Scenario:
    """Look a scenario up by name; raises on unknown names."""
    for scenario in scenario_catalog():
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in scenario_catalog())
    raise ValidationError(
        f"unknown scenario {name!r}; known scenarios: {known}"
    )
