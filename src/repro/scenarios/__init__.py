"""Seeded end-to-end scenarios with machine-checkable ground truth.

The catalogue (:mod:`repro.scenarios.catalog`) composes the unified
:class:`~repro.astro.source.SignalSource` generators into named,
reproducible observations — clean pulses, RFI storms, nulling and
scintillating pulsars, giant-pulse trains, dropped chunks, hostile
tuning inputs — each paired with a :class:`GroundTruth` describing what
the pipeline *must* and *must not* find.  The regression harness
(:mod:`repro.scenarios.regression`) turns the catalogue into a standing
gate: every (scenario × setup × backend) cell runs the full pipeline,
is checked bit-identical across kernel backends, compared against
committed goldens under ``results/goldens/``, and scored for recall and
false-positive rate into BENCH_scenarios.json.
"""

from repro.scenarios.catalog import (
    RealizedScenario,
    Scenario,
    scenario_by_name,
    scenario_catalog,
)
from repro.scenarios.goldens import (
    DEFAULT_ATOL,
    DEFAULT_GOLDENS_DIR,
    DEFAULT_RTOL,
    GOLDEN_SCHEMA_VERSION,
    compare_documents,
    golden_path,
    load_golden,
    save_golden,
)
from repro.scenarios.regression import (
    DEFAULT_BACKENDS,
    MATRIX_MODES,
    SCENARIO_SETUPS,
    CellResult,
    MatrixReport,
    ScenarioSetup,
    cell_document,
    run_cell,
    run_matrix,
    setup_by_key,
)
from repro.scenarios.truth import (
    FALSE_POSITIVE_CEILING,
    RECALL_FLOOR,
    ExpectedCandidate,
    GroundTruth,
    ScenarioScore,
    score_report,
)

__all__ = [
    "CellResult",
    "DEFAULT_ATOL",
    "DEFAULT_BACKENDS",
    "DEFAULT_GOLDENS_DIR",
    "DEFAULT_RTOL",
    "ExpectedCandidate",
    "FALSE_POSITIVE_CEILING",
    "GOLDEN_SCHEMA_VERSION",
    "GroundTruth",
    "MATRIX_MODES",
    "MatrixReport",
    "RECALL_FLOOR",
    "RealizedScenario",
    "SCENARIO_SETUPS",
    "Scenario",
    "ScenarioScore",
    "ScenarioSetup",
    "cell_document",
    "compare_documents",
    "golden_path",
    "load_golden",
    "run_cell",
    "run_matrix",
    "save_golden",
    "scenario_by_name",
    "scenario_catalog",
    "score_report",
    "setup_by_key",
]
