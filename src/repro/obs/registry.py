"""The process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every metric series of the process.
A *series* is one (metric name, label set) pair; series sharing a name
form a *family* and must share a kind (counter / gauge / histogram).
Instruments are created on first use and are safe to touch from any
thread::

    reg = get_registry()
    reg.counter("repro_tuner_sweeps_total", device="HD7970").inc()
    reg.histogram("repro_service_request_latency_seconds").observe(0.012)

Naming conventions (enforced here and linted by
``tools/check_metric_names.py``): names match ``repro_<words>`` in
``snake_case``, counters end in ``_total``, and gauges/histograms carry
their unit as the last word (``_seconds``, ``_gflops``, ``_margin``,
...).  See ``docs/observability.md``.
"""

from __future__ import annotations

import math
import re
import threading
from collections import deque
from typing import Iterator

from repro.errors import ValidationError

#: Metric names: ``repro_`` followed by snake_case words.
METRIC_NAME_RE = re.compile(r"^repro(_[a-z0-9]+)+$")
#: Label names: bare snake_case identifiers.
LABEL_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Default bounded-reservoir size for histograms (see Histogram.window).
DEFAULT_WINDOW = 2048


def percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already sorted, non-empty list.

    The single shared implementation behind every percentile in the
    repository (service latency p50/p95, histogram quantile export,
    multi-beam aggregation).  Uses the standard nearest-rank formula
    ``rank = ceil(fraction * n)`` (1-based) — p50 of an even-length
    population is the lower of the two middle values, not the upper one
    Python's banker's-rounding ``round`` used to pick.
    """
    rank = math.ceil(fraction * len(ordered))
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


def _check_name(name: str) -> str:
    if not METRIC_NAME_RE.match(name):
        raise ValidationError(
            f"metric name {name!r} violates the naming convention "
            f"(expected snake_case starting with 'repro_')"
        )
    return name


def _check_labels(labels: dict) -> tuple[tuple[str, str], ...]:
    """Validate label names and freeze values into a hashable key."""
    frozen = []
    for key in sorted(labels):
        if not LABEL_NAME_RE.match(key):
            raise ValidationError(f"label name {key!r} is not snake_case")
        frozen.append((key, str(labels[key])))
    return tuple(frozen)


class Instrument:
    """Base of all metric series: a name plus a frozen label set."""

    kind = "instrument"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self._labels = labels
        self._lock = threading.Lock()

    @property
    def labels(self) -> dict[str, str]:
        """The series labels as a plain dict (copy)."""
        return dict(self._labels)

    @property
    def key(self) -> tuple[str, tuple[tuple[str, str], ...]]:
        """The registry key identifying this series."""
        return (self.name, self._labels)

    def describe(self) -> str:
        """``name{label="value",...}`` identity string."""
        if not self._labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self._labels)
        return f"{self.name}{{{inner}}}"


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, by: int | float = 1) -> None:
        """Add ``by`` (must be >= 0) to the counter."""
        if by < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (by={by})"
            )
        with self._lock:
            self._value += by

    @property
    def value(self) -> int | float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge(Instrument):
    """A value that can go up and down (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        """Add ``by`` (may be negative) to the gauge."""
        with self._lock:
            self._value += by

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value


class Histogram(Instrument):
    """A distribution: exact totals plus a bounded sliding reservoir.

    ``count`` and ``sum`` are exact over the series lifetime; the
    percentiles are computed over the last :attr:`window` observations
    (an explicit, documented bound — the reservoir never grows past it,
    so long-running processes pay O(window) memory per series and the
    quantiles track recent behaviour rather than the full history).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        window: int = DEFAULT_WINDOW,
    ):
        super().__init__(name, labels)
        if window < 1:
            raise ValidationError(f"histogram window must be >= 1 ({window})")
        self.window = window
        self._reservoir: deque[float] = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        v = float(value)
        with self._lock:
            self._reservoir.append(v)
            self._count += 1
            self._sum += v

    @property
    def count(self) -> int:
        """Total observations ever recorded (not bounded by the window)."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Total of all observations ever recorded."""
        with self._lock:
            return self._sum

    def values(self) -> list[float]:
        """Sorted copy of the current reservoir."""
        with self._lock:
            return sorted(self._reservoir)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 when empty)."""
        ordered = self.values()
        return percentile(ordered, fraction) if ordered else 0.0

    def quantiles(
        self, fractions: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> dict[float, float]:
        """Several percentiles computed over one consistent snapshot."""
        ordered = self.values()
        if not ordered:
            return {q: 0.0 for q in fractions}
        return {q: percentile(ordered, q) for q in fractions}

    def _absorb(self, count: int, total: float, reservoir: list[float]) -> None:
        """Merge persisted state in (used by snapshot loading)."""
        with self._lock:
            self._count += count
            self._sum += total
            self._reservoir.extend(float(v) for v in reservoir)


class MetricsRegistry:
    """Thread-safe home of every metric series in one process.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call for a (name, labels) pair builds the instrument, later calls
    return the same object.  Registering one name with two different
    kinds is an error — a family has exactly one kind.
    """

    def __init__(self, default_window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._series: dict[tuple, Instrument] = {}
        self._kinds: dict[str, str] = {}
        self.default_window = default_window

    # -- instrument access ---------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter series for (name, labels), created on first use."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge series for (name, labels), created on first use."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, window: int | None = None, **labels: object
    ) -> Histogram:
        """The histogram series for (name, labels), created on first use.

        ``window`` bounds the percentile reservoir; it applies only at
        creation (the first caller fixes the bound for the series).
        """
        return self._get_or_create(
            Histogram, name, labels,
            window=self.default_window if window is None else window,
        )

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        _check_name(name)
        if cls is Counter and not name.endswith("_total"):
            raise ValidationError(
                f"counter {name!r} must end in '_total' (convention)"
            )
        if cls is not Counter and name.endswith("_total"):
            raise ValidationError(
                f"{cls.kind} {name!r} must not end in '_total' "
                f"(reserved for counters)"
            )
        key = (name, _check_labels(labels))
        with self._lock:
            existing = self._series.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValidationError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            registered_kind = self._kinds.get(name)
            if registered_kind is not None and registered_kind != cls.kind:
                raise ValidationError(
                    f"metric family {name!r} is a {registered_kind}; "
                    f"cannot add a {cls.kind} series"
                )
            instrument = cls(name, key[1], **kwargs)
            self._series[key] = instrument
            self._kinds[name] = cls.kind
            return instrument

    # -- inspection ----------------------------------------------------
    def get(self, name: str, **labels: object) -> Instrument | None:
        """The existing series for (name, labels), or None."""
        key = (name, _check_labels(labels))
        with self._lock:
            return self._series.get(key)

    def series(self) -> Iterator[Instrument]:
        """Every registered series, ordered by (name, labels)."""
        with self._lock:
            items = sorted(self._series)
            return iter([self._series[k] for k in items])

    def families(self) -> dict[str, str]:
        """Mapping of metric name -> kind for every family."""
        with self._lock:
            return dict(self._kinds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def reset(self) -> None:
        """Drop every series (testing / ``repro obs reset``)."""
        with self._lock:
            self._series.clear()
            self._kinds.clear()


# ----------------------------------------------------------------------
# The process-wide default registry.
# ----------------------------------------------------------------------
_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every instrumented path uses."""
    with _default_lock:
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous


class use_registry:
    """Context manager installing ``registry`` as the process default.

    The isolation hook for tests::

        with use_registry(MetricsRegistry()) as reg:
            ...  # instrumented code records into `reg` only
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry or MetricsRegistry()
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_registry(self._previous)
