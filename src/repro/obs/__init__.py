"""Unified observability: one metrics/tracing API for the whole system.

The paper's argument is measurement — per-configuration GFLOP/s,
statistics of the optimum, real-time margins — and a served deployment
needs the same rigour at run time.  This package is the single surface
every subsystem reports through:

* :class:`MetricsRegistry` — process-wide counters, gauges and
  histograms with labelled series and nearest-rank percentiles
  (:func:`get_registry` returns the default one every instrumented hot
  path records into).
* :class:`Tracer` / :func:`span` — nested wall-clock spans with child
  aggregation; every span also lands in the registry.
* Exporters — Prometheus text (:func:`to_prometheus`), JSON lines
  (:func:`to_jsonl`), and in-memory/file snapshots
  (:func:`registry_to_dict`, :func:`save_snapshot`) behind the
  ``repro obs`` CLI.

Instrumented out of the box: ``AutoTuner.tune`` (sweep spans, configs
evaluated, best GFLOP/s), ``TuningService`` (cache tiers, dedups,
degradations, request latency), the ``opencl_sim`` runtime (kernel
launches, modelled seconds), and every pipeline stage (spans plus
real-time margin gauges).  Conventions live in ``docs/observability.md``.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
    METRIC_NAME_RE,
    DEFAULT_WINDOW,
    get_registry,
    percentile,
    set_registry,
    use_registry,
)
from repro.obs.tracing import Span, Tracer, get_tracer, span
from repro.obs.export import (
    JsonLinesExporter,
    default_snapshot_path,
    from_jsonl,
    load_snapshot,
    parse_prometheus,
    registry_from_dict,
    registry_to_dict,
    render_table,
    save_snapshot,
    to_jsonl,
    to_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "METRIC_NAME_RE",
    "DEFAULT_WINDOW",
    "get_registry",
    "set_registry",
    "use_registry",
    "percentile",
    "Span",
    "Tracer",
    "get_tracer",
    "span",
    "JsonLinesExporter",
    "default_snapshot_path",
    "from_jsonl",
    "load_snapshot",
    "parse_prometheus",
    "registry_from_dict",
    "registry_to_dict",
    "render_table",
    "save_snapshot",
    "to_jsonl",
    "to_prometheus",
]
