"""Exporters for the metrics registry.

Three formats, one source of truth:

* **Prometheus text** (:func:`to_prometheus`) — counters and gauges as-is,
  histograms in summary form (``quantile`` labels plus ``_count`` and
  ``_sum``).  :func:`parse_prometheus` round-trips the output back into
  ``{(name, labels): value}`` so tests can assert export fidelity.
* **JSON lines** (:func:`to_jsonl` / :func:`from_jsonl`) — one JSON
  object per series per line; the machine-readable event-log format and
  the lossless one (histograms keep their reservoir).
* **In-memory snapshot** (:func:`registry_to_dict` /
  :func:`registry_from_dict`) — a plain dict for tests and for the
  cross-process snapshot file behind ``repro obs`` (counters merge by
  sum, gauges by last-write, histograms by reservoir union).

The snapshot file location is ``$REPRO_OBS_PATH`` or ``.repro-obs.json``
in the working directory (:func:`default_snapshot_path`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import ValidationError
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Quantiles emitted for every histogram in every export format.
EXPORT_QUANTILES: tuple[float, ...] = (0.5, 0.95, 0.99)

#: Environment variable overriding the snapshot file location.
SNAPSHOT_ENV = "REPRO_OBS_PATH"

#: Default snapshot file name (in the current working directory).
SNAPSHOT_DEFAULT = ".repro-obs.json"


def default_snapshot_path() -> Path:
    """Where ``repro`` CLI commands persist/read the registry snapshot."""
    return Path(os.environ.get(SNAPSHOT_ENV, SNAPSHOT_DEFAULT))


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(merged.items())
    )
    return f"{{{inner}}}"


def _num(value: float) -> str:
    # Integers render without exponent/decimal so counters stay exact.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in the Prometheus exposition text format."""
    lines: list[str] = []
    typed: set[str] = set()
    for instrument in registry.series():
        name, labels = instrument.name, instrument.labels
        if isinstance(instrument, Counter):
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(f"{name}{_labels_text(labels)} {_num(instrument.value)}")
        elif isinstance(instrument, Gauge):
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{_labels_text(labels)} {_num(instrument.value)}")
        elif isinstance(instrument, Histogram):
            if name not in typed:
                lines.append(f"# TYPE {name} summary")
                typed.add(name)
            for q, value in instrument.quantiles(EXPORT_QUANTILES).items():
                extra = {"quantile": _num(q)}
                lines.append(
                    f"{name}{_labels_text(labels, extra)} {_num(value)}"
                )
            lines.append(
                f"{name}_count{_labels_text(labels)} {_num(instrument.count)}"
            )
            lines.append(
                f"{name}_sum{_labels_text(labels)} {_num(instrument.sum)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text back into ``{(name, labels): value}``.

    Supports exactly the subset :func:`to_prometheus` emits — enough for
    an export → parse → compare round-trip in tests.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("} ", 1)
            labels = []
            for part in _split_labels(label_text):
                key, quoted = part.split("=", 1)
                value = (
                    quoted[1:-1]
                    .replace(r"\n", "\n")
                    .replace(r"\"", '"')
                    .replace(r"\\", "\\")
                )
                labels.append((key, value))
            out[(name, tuple(sorted(labels)))] = float(value_text)
        else:
            name, value_text = line.rsplit(" ", 1)
            out[(name, ())] = float(value_text)
    return out


def _split_labels(label_text: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` respecting escaped quotes."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in label_text:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts


# ----------------------------------------------------------------------
# In-memory snapshot (dict) + merge
# ----------------------------------------------------------------------
def _series_doc(instrument) -> dict:
    doc = {
        "name": instrument.name,
        "kind": instrument.kind,
        "labels": instrument.labels,
    }
    if isinstance(instrument, Histogram):
        doc.update(
            count=instrument.count,
            sum=instrument.sum,
            window=instrument.window,
            reservoir=list(instrument.values()),
        )
    else:
        doc["value"] = instrument.value
    return doc


def registry_to_dict(registry: MetricsRegistry) -> dict:
    """A JSON-friendly snapshot of every series."""
    return {
        "version": 1,
        "series": [_series_doc(i) for i in registry.series()],
    }


def registry_from_dict(
    doc: dict, into: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Rebuild (or merge into) a registry from a snapshot document.

    Merging an existing registry: counters add, gauges keep the incoming
    value, histograms union reservoirs and sum their exact totals.
    """
    if doc.get("version") != 1:
        raise ValidationError(
            f"unsupported obs snapshot version {doc.get('version')!r}"
        )
    registry = into if into is not None else MetricsRegistry()
    for series in doc.get("series", ()):
        name = series["name"]
        kind = series["kind"]
        labels = dict(series.get("labels", {}))
        if kind == "counter":
            registry.counter(name, **labels).inc(series["value"])
        elif kind == "gauge":
            registry.gauge(name, **labels).set(series["value"])
        elif kind == "histogram":
            hist = registry.histogram(
                name, window=series.get("window"), **labels
            )
            hist._absorb(
                int(series.get("count", 0)),
                float(series.get("sum", 0.0)),
                series.get("reservoir", []),
            )
        else:
            raise ValidationError(f"unknown series kind {kind!r}")
    return registry


def save_snapshot(
    registry: MetricsRegistry,
    path: str | Path | None = None,
    merge: bool = True,
) -> Path:
    """Persist the registry as JSON, merging into any existing snapshot.

    The merge makes the snapshot file cumulative across CLI runs: a
    ``repro service`` run and a ``repro survey`` run land in the same
    file, and ``repro obs export`` sees both.
    """
    target = Path(path) if path is not None else default_snapshot_path()
    if merge and target.exists():
        base = load_snapshot(target)
        merged = registry_from_dict(registry_to_dict(registry), into=base)
    else:
        merged = registry
    target.write_text(json.dumps(registry_to_dict(merged), indent=1))
    return target


def load_snapshot(
    path: str | Path | None = None, into: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Rebuild a registry from a snapshot file written by :func:`save_snapshot`."""
    source = Path(path) if path is not None else default_snapshot_path()
    try:
        doc = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"cannot read obs snapshot {source}: {exc}"
        ) from exc
    return registry_from_dict(doc, into=into)


# ----------------------------------------------------------------------
# JSON-lines event log
# ----------------------------------------------------------------------
def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per series per line (lossless for histograms)."""
    return "\n".join(
        json.dumps(_series_doc(i), sort_keys=True)
        for i in registry.series()
    ) + ("\n" if len(registry) else "")


def from_jsonl(
    text: str, into: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Rebuild (or merge into) a registry from :func:`to_jsonl` output."""
    series = [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]
    return registry_from_dict({"version": 1, "series": series}, into=into)


class JsonLinesExporter:
    """Append-only JSON-lines event log for finished spans and snapshots.

    Attach to code manually (``exporter.write_span(span)``) or dump a
    whole registry (``exporter.write_registry(registry)``); every call
    appends complete lines, so the file is always parseable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def write_span(self, span) -> None:
        """Append one finished span tree as a single JSON line."""
        with self.path.open("a") as fh:
            fh.write(json.dumps({"event": "span", **span.to_dict()}) + "\n")

    def write_registry(self, registry: MetricsRegistry) -> None:
        """Append every series of ``registry``, one line each."""
        with self.path.open("a") as fh:
            for instrument in registry.series():
                fh.write(
                    json.dumps(
                        {"event": "series", **_series_doc(instrument)},
                        sort_keys=True,
                    )
                    + "\n"
                )


# ----------------------------------------------------------------------
# Human-readable dump (CLI)
# ----------------------------------------------------------------------
def render_table(registry: MetricsRegistry) -> str:
    """Aligned text table of every series (the ``repro obs dump`` view)."""
    rows: list[tuple[str, str, str]] = []
    for instrument in registry.series():
        if isinstance(instrument, Histogram):
            q = instrument.quantiles((0.5, 0.95))
            value = (
                f"count={instrument.count} sum={instrument.sum:.6g} "
                f"p50={q[0.5]:.6g} p95={q[0.95]:.6g}"
            )
        else:
            value = _num(instrument.value)
        rows.append((instrument.kind, instrument.describe(), value))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(identity) for _, identity, _ in rows)
    return "\n".join(
        f"{kind:<9} {identity:<{width}} {value}"
        for kind, identity, value in rows
    )
