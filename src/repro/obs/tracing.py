"""Lightweight tracing: nested wall-clock spans feeding the registry.

A span measures one named unit of work.  Spans nest per thread — a span
opened while another is active becomes its child — so a pipeline run
yields a tree: ``pipeline.chunk`` containing ``pipeline.dedisperse`` and
``pipeline.single_pulse``, each with its own wall time.  On exit every
span also lands in the metrics registry as one observation of
``repro_trace_span_seconds{span=<name>}`` plus an increment of
``repro_trace_spans_total{span=<name>}``, so exporters see span timing
without walking trees.

High-cardinality details (DM counts, sequence numbers) belong in span
*attributes*, which stay on the span object; only the span *name*
becomes a metric label.  See ``docs/observability.md``.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ValidationError
from repro.obs.registry import MetricsRegistry, get_registry

#: Span names: dotted snake_case, e.g. ``tuner.sweep``.
SPAN_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


class Span:
    """One timed unit of work, possibly containing child spans."""

    __slots__ = (
        "name", "attributes", "children", "_start", "_end", "started_at"
    )

    def __init__(self, name: str, attributes: dict):
        if not SPAN_NAME_RE.match(name):
            raise ValidationError(
                f"span name {name!r} must be dotted snake_case"
            )
        self.name = name
        self.attributes = attributes
        self.children: list[Span] = []
        self.started_at = time.time()
        self._start = time.perf_counter()
        self._end: float | None = None

    def finish(self) -> None:
        """Stop the clock (idempotent)."""
        if self._end is None:
            self._end = time.perf_counter()

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self._end is not None

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds from open to close (so far, if still open)."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    @property
    def child_seconds(self) -> float:
        """Aggregate wall time spent in direct children."""
        return sum(c.duration_s for c in self.children)

    @property
    def self_seconds(self) -> float:
        """Wall time spent in this span outside its direct children."""
        return max(0.0, self.duration_s - self.child_seconds)

    def iter_tree(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def to_dict(self) -> dict:
        """JSON-friendly tree rendering (for the event-log exporter)."""
        return {
            "span": self.name,
            "started_at": self.started_at,
            "duration_s": self.duration_s,
            "self_s": self.self_seconds,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable tree, one span per line."""
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        line = (
            f"{'  ' * indent}{self.name} {1e3 * self.duration_s:.2f} ms"
            + (f" [{attrs}]" if attrs else "")
        )
        return "\n".join(
            [line] + [c.render(indent + 1) for c in self.children]
        )


class Tracer:
    """Per-thread span stacks plus a bounded log of finished root spans.

    ``registry=None`` (the default) resolves the process-wide registry at
    span-exit time, so a tracer created at import follows later
    :func:`~repro.obs.registry.set_registry` swaps.
    """

    def __init__(self, registry: MetricsRegistry | None = None, keep: int = 256):
        self._registry = registry
        self._local = threading.local()
        self._finished_lock = threading.Lock()
        self.finished: deque[Span] = deque(maxlen=keep)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def registry(self) -> MetricsRegistry:
        """The registry span metrics are recorded into."""
        return self._registry if self._registry is not None else get_registry()

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span; nested calls on the same thread become children."""
        node = Span(name, dict(attributes))
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(node)
        try:
            yield node
        finally:
            node.finish()
            stack.pop()
            if parent is not None:
                parent.children.append(node)
            else:
                with self._finished_lock:
                    self.finished.append(node)
            registry = self.registry
            registry.counter("repro_trace_spans_total", span=name).inc()
            registry.histogram(
                "repro_trace_span_seconds", span=name
            ).observe(node.duration_s)


#: The default tracer behind the module-level :func:`span` helper.
_default_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def span(name: str, **attributes: object):
    """Open a span on the default tracer (the one-import entry point)::

        from repro.obs import span

        with span("pipeline.chunk", beam=3) as s:
            ...
    """
    return _default_tracer.span(name, **attributes)
