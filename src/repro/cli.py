"""Command-line interface: ``repro-dedisp`` / ``python -m repro``.

Subcommands:

* ``devices`` — print Table I.
* ``tune`` — auto-tune one (device, setup, DM-count) combination and show
  the optimum, the sweep statistics, and the real-time verdict.
* ``experiment`` — regenerate one of the paper's tables/figures by id
  (``table1``, ``fig2`` ... ``fig16``, ``ai``, ``deployment``, the
  ``ablation-*`` studies), or ``all``; ``--export DIR`` also writes
  CSV/JSON.
* ``demo`` — end-to-end functional run: synthesize a dispersed pulsar,
  dedisperse it with the tuned kernel, and report the recovered DM.
* ``ddplan`` — smearing-optimal staged DM plan for a setup.
* ``service`` — run the concurrent tuning service against simulated
  client traffic and print the cache/dedup/latency statistics plus a
  metrics-registry snapshot (persisted for ``repro obs``).
* ``survey`` — run the resumable multi-beam survey driver: a catalogue
  scenario realized beam-correlated (signal localized to adjacent
  beams, RFI in all beams), searched per beam, dispatched on the
  simulated fleet, and coincidence-vetoed across beams; ``--ledger`` /
  ``--resume`` checkpoint completed beams byte-identically and
  ``--smoke`` runs the acceptance gate.
* ``sched`` — plan a fleet for a survey, then execute every shard on it
  through the fault-tolerant scheduler (``--inject`` adds a crash, a
  straggler, and transient errors); writes/resumes run ledgers.
* ``search`` — stream an injected-pulse synthetic observation through
  the real-time candidate search (facade-executed dedispersion, boxcar
  matched filtering, sifting with RFI vetoes) and verify the injected
  candidate is recovered; ``--backend both`` runs the tiled and
  vectorized kernel executors back to back.
* ``obs`` — dump, export (Prometheus text / JSON lines / JSON), or reset
  the observability snapshot accumulated by the other subcommands.
"""

from __future__ import annotations

import argparse
import sys

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup, apertif, lofar
from repro.core.stats import OptimumStatistics
from repro.core.tuner import AutoTuner
from repro.errors import ReproError
from repro.hardware.catalog import device_by_name
from repro.experiments import SweepCache, run_experiment
from repro.experiments.registry import experiment_ids


def _persist_obs(quiet: bool = False) -> None:
    """Merge this process's metrics into the obs snapshot file."""
    from repro.obs import get_registry, save_snapshot

    registry = get_registry()
    if not len(registry):
        return
    path = save_snapshot(registry)
    if not quiet:
        print(f"observability snapshot merged into {path}")


def _setup_by_name(name: str) -> ObservationSetup:
    table = {"apertif": apertif, "lofar": lofar}
    try:
        return table[name.lower()]()
    except KeyError:
        raise ReproError(
            f"unknown setup {name!r}; known: apertif, lofar"
        ) from None


def _cmd_devices(_args: argparse.Namespace) -> int:
    print(run_experiment("table1").render())
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    setup = _setup_by_name(args.setup)
    grid = (
        DMTrialGrid.zero_dm(args.dms)
        if args.zero_dm
        else DMTrialGrid(args.dms, step=args.dm_step)
    )
    outcome = None
    if args.load:
        from repro.core.persistence import load_sweep

        result = load_sweep(args.load)
    elif args.strategy != "exhaustive":
        from repro.tune import build_strategy

        outcome = build_strategy(args.strategy).search(
            AutoTuner(device, setup), grid
        )
        result = outcome.result
    else:
        result = AutoTuner(device, setup).tune(grid)
    if args.save:
        from repro.core.persistence import save_sweep

        print(f"sweep saved to {save_sweep(result, args.save)}")
    best = result.best
    stats = OptimumStatistics.from_population(result.population_gflops)
    print(f"device : {device.name}")
    print(f"setup  : {setup.describe()}")
    print(f"grid   : {grid.n_dms} DMs, step {grid.step}")
    print(f"optimum: {best.config.describe()}")
    print(f"         {best.metrics.summary()}")
    print(f"sweep  : {stats.summary()}")
    if outcome is not None:
        print(
            f"search : {outcome.strategy} evaluated "
            f"{outcome.evaluations:.1f}/{outcome.space_size} candidates "
            f"({100.0 * outcome.fraction_evaluated:.1f}% of the space, "
            f"{outcome.measurements} measurements)"
        )
    needed = setup.realtime_gflops(grid.n_dms)
    verdict = "yes" if best.gflops >= needed else "NO"
    print(f"real-time: {verdict} (needs {needed:.1f} GFLOP/s)")
    _persist_obs(quiet=True)
    return 0


def _parse_instances(text: str) -> list[int]:
    instances = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            instances.append(int(token))
        except ValueError:
            raise ReproError(
                f"invalid instance {token!r} (expected integers)"
            ) from None
    if not instances:
        raise ReproError("no instances given (expected N,N,...)")
    return instances


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.tune import run_ablation

    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    setups = [s.strip() for s in args.setups.split(",") if s.strip()]
    report = run_ablation(
        devices,
        setups,
        _parse_instances(args.instances),
        strategy=args.strategy,
        dm_step=args.dm_step,
        seed=args.seed,
    )
    print(report.render())
    full = report.full
    print(
        f"\nfull {report.strategy}: "
        f"{100.0 * full.match_rate:.0f}% optimum match at "
        f"{100.0 * full.mean_fraction:.1f}% mean cost"
    )
    if args.out:
        print(f"report written to {report.save(args.out)}")
    _persist_obs(quiet=True)
    return 0


def _cmd_study(args: argparse.Namespace) -> int:
    import json as json_module

    from pathlib import Path

    from repro.tune import StudyConfig, run_study, save_study

    if args.config:
        document = json_module.loads(Path(args.config).read_text())
        config = StudyConfig.from_dict(document)
    else:
        config = StudyConfig(
            title=args.title,
            devices=tuple(
                d.strip() for d in args.devices.split(",") if d.strip()
            ),
            setups=tuple(
                s.strip() for s in args.setups.split(",") if s.strip()
            ),
            instances=tuple(_parse_instances(args.instances)),
            strategies=tuple(
                s.strip() for s in args.strategies.split(",") if s.strip()
            ),
            seed=args.seed,
            dm_step=args.dm_step,
        )
    result = run_study(config)
    print(result.summary())
    if args.out:
        print(f"study written to {save_study(result, args.out)}")
    _persist_obs(quiet=True)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import inspect

    from repro.experiments.registry import EXPERIMENTS

    ids = experiment_ids() if args.id == "all" else (args.id,)
    cache = SweepCache()
    for experiment_id in ids:
        kwargs = {}
        if "cache" in inspect.signature(EXPERIMENTS[experiment_id]).parameters:
            kwargs["cache"] = cache
        result = run_experiment(experiment_id, **kwargs)
        if args.plot and result.series:
            print(result.render_plot())
        else:
            print(result.render())
        if args.export:
            from repro.analysis.export import write_result

            for path in write_result(result, args.export):
                print(f"  wrote {path}")
        print()
    return 0


def _cmd_ddplan(args: argparse.Namespace) -> int:
    from repro.astro.ddplan import build_ddplan

    setup = _setup_by_name(args.setup)
    plan = build_ddplan(
        setup, max_dm=args.max_dm, tolerance=args.tolerance
    )
    print(plan.describe())
    finest = plan.stages[0].dm_step
    fixed = plan.naive_trials(finest)
    print(
        f"  (a fixed grid at the finest step {finest:.4f} would need "
        f"{fixed} trials; the paper's fixed {args.compare_step} step, "
        f"{plan.naive_trials(args.compare_step)} trials, under-resolves "
        "the low-DM stages)"
    )
    return 0


def _cmd_service(args: argparse.Namespace) -> int:
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import (
        ServiceClient,
        TenantAdmission,
        TuneRequest,
        TuningFleet,
    )
    from repro.utils.rng import RandomStreams

    device = device_by_name(args.device)
    setup = _setup_by_name(args.setup)
    instances = []
    for token in args.instances.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            instances.append(int(token))
        except ValueError:
            raise ReproError(
                f"invalid instance {token!r} in --instances (expected integers)"
            ) from None
    if not instances:
        raise ReproError("no instances given (use --instances N,N,...)")
    if args.replicas < 1:
        raise ReproError("--replicas must be >= 1")
    if args.tenants < 1:
        raise ReproError("--tenants must be >= 1")

    admission = None
    if args.admission_rate is not None:
        admission = TenantAdmission(
            capacity=args.admission_burst, refill_per_s=args.admission_rate
        )

    store_ctx = None
    store_dir = args.store or None
    if store_dir is None and args.replicas > 1:
        # Warm sharing needs the shared disk tier; give the run one.
        store_ctx = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        store_dir = store_ctx.name
        print(f"(sharing sweeps across replicas via {store_dir})")

    fleet = TuningFleet(
        replicas=args.replicas,
        store_dir=store_dir,
        admission=admission,
        max_workers=args.workers,
        timeout_s=args.timeout,
    )
    try:
        with fleet:
            if args.warm_up:
                for response in fleet.warm_up(device, setup, instances):
                    print(f"warm-up  {response.describe()}")

            def tenant_worker(tenant_id: int) -> list:
                client = ServiceClient(fleet, tenant=f"tenant{tenant_id}")
                streams = RandomStreams(seed=tenant_id)
                wanted = instances * args.load
                streams.python("order").shuffle(wanted)
                return [
                    client.resolve(
                        TuneRequest(
                            setup=setup,
                            n_dms=n,
                            device=device,
                            priority=args.priority,
                            strategy=args.strategy or None,
                        )
                    )
                    for n in wanted
                ]

            with ThreadPoolExecutor(max_workers=args.tenants) as pool:
                all_responses = [
                    response
                    for worker in pool.map(
                        tenant_worker, range(args.tenants)
                    )
                    for response in worker
                ]

            print(
                f"\n{args.tenants} tenants x "
                f"{len(instances) * args.load} requests against "
                f"{args.replicas} replica(s) of {device.name}/{setup.name}:"
            )
            for n in instances:
                best = next(
                    r.best for r in all_responses if r.key.n_dms == n
                )
                print(
                    f"  {n:>6} DMs -> {best.config.describe()} "
                    f"{best.gflops:.1f} GFLOP/s"
                )
            print()
            print(fleet.snapshot().render())

            if args.smoke:
                _service_pipeline_smoke(
                    ServiceClient(fleet, tenant="smoke"), device
                )
    finally:
        if store_ctx is not None:
            store_ctx.cleanup()

    from repro.obs import get_registry, render_table

    print("\nmetrics registry:")
    print(render_table(get_registry()))
    _persist_obs()
    return 0


def _service_pipeline_smoke(client, device) -> None:
    """Run one tuned configuration end to end through the pipeline.

    Proves the service's answer actually executes: a small synthetic
    instance is tuned *through the client*, the resulting plan
    dedisperses one chunk via the streaming pipeline, and the same
    launch goes through the mini OpenCL runtime — so one ``repro
    service`` run populates tuner, service, pipeline, and simulator
    metrics for ``repro obs export``.
    """
    import numpy as np

    from repro.astro.telescope import StreamChunk
    from repro.core.plan import DedispersionPlan
    from repro.opencl_sim import CommandQueue, Context, SimDevice
    from repro.pipeline.streaming import StreamingDedispersion
    from repro.service import TuneRequest

    setup = ObservationSetup(
        name="obs-smoke",
        channels=32,
        lowest_frequency=138.0,
        channel_bandwidth=0.2,
        samples_per_second=1000,
        samples_per_batch=1000,
    )
    grid = DMTrialGrid(n_dms=8, first=1.0, step=1.0)
    response = client.resolve(
        TuneRequest(setup=setup, n_dms=grid, device=device)
    )
    plan = DedispersionPlan.create(
        setup, grid, device, config=response.best.config
    )
    overlap = int(plan.delays.max(initial=0))
    rng = np.random.default_rng(0)
    data = rng.normal(
        size=(setup.channels, plan.samples + overlap)
    ).astype(np.float32)
    stream = StreamingDedispersion(plan)
    result = stream.process(
        StreamChunk(
            beam_index=0, sequence=0, data=data,
            samples=plan.samples, overlap=overlap,
        )
    )
    context = Context(SimDevice(device))
    queue = CommandQueue(context)
    input_buffer = context.alloc(data.shape)
    input_buffer.write(data)
    output_buffer = context.alloc((grid.n_dms, plan.samples))
    event = plan.enqueue(queue, input_buffer, output_buffer)
    print(
        f"\npipeline smoke: {response.source} config "
        f"{response.best.config.describe()} processed 1 chunk "
        f"({'real-time' if result.realtime else 'NOT real-time'}, "
        f"modelled {1e3 * (event.simulated_seconds or 0):.2f} ms)"
    )


def _cmd_sched(args: argparse.Namespace) -> int:
    from repro.pipeline.fleet import FleetDevice, plan_fleet
    from repro.sched import ExecutionEngine, FaultProfile, load_ledger

    setup = _setup_by_name(args.setup)
    grid = DMTrialGrid(args.dms, step=args.dm_step)
    inventory = []
    for token in args.inventory.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(
                f"invalid inventory entry {token!r} "
                "(expected NAME:COUNT or NAME:COUNT:COST)"
            )
        try:
            count = int(parts[1])
            cost = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError:
            raise ReproError(f"invalid inventory entry {token!r}") from None
        inventory.append(
            FleetDevice(
                device_by_name(parts[0]), available=count, unit_cost=cost
            )
        )
    if not inventory:
        raise ReproError("no inventory given (use --inventory NAME:COUNT,...)")

    plan = plan_fleet(inventory, setup, grid, args.beams)
    print(plan.summary())
    print()

    faults = (
        FaultProfile.default_injection() if args.inject else FaultProfile.none()
    )
    resume_from = load_ledger(args.resume) if args.resume else None
    engine = ExecutionEngine.from_plan(
        plan,
        inventory,
        setup,
        grid,
        duration_s=args.duration,
        seed=args.seed,
        faults=faults,
        steal=not args.no_steal,
        max_dms_per_shard=args.max_dms_per_shard,
        resume_from=resume_from,
    )
    report = engine.run()
    print(report.summary())
    if args.ledger:
        print(f"ledger written to {report.ledger.save(args.ledger)}")
    _persist_obs()
    return 0 if report.complete else 1


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.astro.signal_gen import SyntheticPulsar
    from repro.astro.telescope import Telescope
    from repro.core.plan import DedispersionPlan
    from repro.search import SearchConfig, StreamingSearch

    import dataclasses

    setup = _setup_by_name(args.setup)
    if args.samples:
        setup = dataclasses.replace(setup, samples_per_batch=args.samples)
    # The grid starts one step above DM 0 so the zero-DM RFI filter can
    # run (it nulls the DM-0 series; see repro.astro.rfi).
    grid = DMTrialGrid(n_dms=args.dms, first=args.dm_step, step=args.dm_step)
    device = device_by_name(args.device)
    plan = DedispersionPlan.create(setup, grid, device)
    chunk_seconds = plan.samples / setup.samples_per_second

    true_dm = float(grid.values[args.dms // 2])
    true_trial = args.dms // 2
    # A few pulses inside the stream regardless of chunk cadence.
    period = args.chunks * chunk_seconds / 3.0
    telescope = Telescope(setup=setup, noise_sigma=1.0, seed=args.seed)
    beam = telescope.add_beam(
        pulsars=(SyntheticPulsar(period, dm=true_dm, amplitude=0.3),)
    )
    chunks = list(
        telescope.stream(beam, args.chunks, grid, chunk_seconds=chunk_seconds)
    )

    backends = (
        ("tiled", "vectorized") if args.backend == "both" else (args.backend,)
    )
    config = SearchConfig(
        snr_threshold=args.threshold,
        rfi_mitigation=args.rfi,
        fused=not args.staged,
    )
    print(plan.describe())
    print(f"injected pulsar at DM {true_dm:.2f} (trial {true_trial})")
    print()
    all_ok = True
    for backend in backends:
        report = StreamingSearch(plan, config, backend=backend).run(
            iter(chunks)
        )
        print(report.summary())
        path = "staged" if args.staged else "fused"
        print(
            f"  peak working set [{path}]: {report.peak_bytes:,} bytes/chunk"
        )
        best = report.best
        recovered = (
            best is not None
            and abs(best.best.dm_index - true_trial) <= 1
            and best.best.snr >= args.threshold
        )
        all_ok &= recovered
        print(f"  recovery [{backend}]: "
              f"{'CORRECT' if recovered else 'MISSED'}")
        print()
    _persist_obs()
    return 0 if all_ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        default_snapshot_path,
        get_registry,
        load_snapshot,
        registry_to_dict,
        render_table,
        to_jsonl,
        to_prometheus,
    )
    from pathlib import Path

    path = Path(args.input) if args.input else default_snapshot_path()

    if args.action == "reset":
        get_registry().reset()
        if path.exists():
            path.unlink()
            print(f"removed {path}")
        else:
            print(f"no snapshot at {path}")
        return 0

    if path.exists():
        registry = load_snapshot(path)
    else:
        # No persisted snapshot: fall back to this process's registry
        # (usually empty — the snapshot is written by the other
        # subcommands, e.g. `repro service`).
        registry = get_registry()

    if args.action == "dump":
        print(render_table(registry))
        return 0

    # action == "export"
    if args.format == "prom":
        text = to_prometheus(registry)
    elif args.format == "jsonl":
        text = to_jsonl(registry)
    else:
        text = json.dumps(registry_to_dict(registry), indent=1) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _write_survey_bench(path: str, docs: list) -> None:
    import json
    from pathlib import Path

    document = {"bench": "survey", "runs": docs}
    Path(path).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {path}")


def _survey_smoke(args: argparse.Namespace) -> int:
    """The survey acceptance gate: recall, FP reduction, resume bytes."""
    import tempfile
    from pathlib import Path

    from repro.errors import PipelineError
    from repro.survey import SurveyPlan, run_survey

    n_beams = max(args.beams, 8)
    failures: list[str] = []
    docs: list = []
    print(f"survey smoke: {n_beams} beams on setup {args.setup!r}")
    for scenario in ("giant_pulse_train", "rfi_storm"):
        plan = SurveyPlan(
            scenario=scenario,
            setup=args.setup,
            n_beams=n_beams,
            seed=args.seed,
        )
        report = run_survey(plan)
        docs.append(report.as_dict())
        score = report.score
        ok = score.recall >= 0.95 and score.fp_reduced
        if scenario == "rfi_storm":
            # The storm must demonstrate the veto: strictly fewer
            # false positives after coincidencing, not just no worse.
            ok = ok and (
                score.post_false_positives < score.pre_false_positives
            )
        print(
            f"  {scenario:20s} recall {score.recall:.2f} "
            f"fp {score.pre_false_positives}->"
            f"{score.post_false_positives} {report.verdict} "
            f"[{'ok' if ok else 'FAIL'}]"
        )
        if not ok:
            failures.append(scenario)
    with tempfile.TemporaryDirectory() as tmp:
        plan = SurveyPlan(
            scenario="rfi_storm",
            setup=args.setup,
            n_beams=n_beams,
            seed=args.seed,
        )
        straight = Path(tmp) / "straight.jsonl"
        crashed = Path(tmp) / "crashed.jsonl"
        run_survey(plan, ledger_path=straight)
        try:
            run_survey(plan, ledger_path=crashed, crash_after=3)
        except PipelineError:
            pass
        run_survey(plan, ledger_path=crashed, resume=True)
        identical = straight.read_bytes() == crashed.read_bytes()
        print(
            f"  resume after injected crash byte-identical: "
            f"{'yes' if identical else 'NO'}"
        )
        if not identical:
            failures.append("resume-byte-identity")
    if args.bench:
        _write_survey_bench(args.bench, docs)
    _persist_obs(quiet=True)
    if failures:
        print(f"survey smoke FAILED: {', '.join(failures)}")
        return 1
    print("survey smoke passed")
    return 0


def _cmd_survey(args: argparse.Namespace) -> int:
    from repro.sched import FaultProfile
    from repro.survey import SurveyPlan, run_survey

    if args.smoke:
        return _survey_smoke(args)
    if args.backend == "both" and args.ledger:
        raise ReproError(
            "--ledger pins one survey identity; pick --backend "
            "tiled, vectorized, or auto"
        )
    backends = (
        ["tiled", "vectorized"]
        if args.backend == "both"
        else [args.backend]
    )
    faults = (
        FaultProfile.default_injection()
        if args.inject
        else FaultProfile.none()
    )
    exit_code = 0
    docs: list = []
    for backend in backends:
        plan = SurveyPlan(
            scenario=args.scenario,
            setup=args.setup,
            n_beams=args.beams,
            n_dms=args.dms,
            seed=args.seed,
            backend=None if backend == "auto" else backend,
            n_chunks=args.chunks,
            signal_radius=args.signal_radius,
            adjacent_attenuation=args.attenuation,
            faults=faults,
        )
        report = run_survey(
            plan,
            ledger_path=args.ledger,
            resume=args.resume,
            crash_after=args.crash_after,
        )
        print(report.summary())
        if len(backends) > 1:
            print()
        docs.append(report.as_dict())
        if not report.score.fp_reduced:
            exit_code = 1
    if args.bench:
        _write_survey_bench(args.bench, docs)
    _persist_obs(quiet=True)
    return exit_code


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.astro.dispersion import max_delay_samples
    from repro.astro.observation import ObservationSetup
    from repro.astro.signal_gen import SyntheticPulsar
    from repro.astro.snr import detect_dm
    from repro.astro.source import CompositeSource, NoiseSource, PulsarSource
    from repro.core.dedisperse import dedisperse
    from repro.utils.rng import RandomStreams

    # A laptop-scale, low-frequency setup: LOFAR-like dispersion (strong
    # per-trial discrimination) with few channels and samples so the
    # functional kernel runs in seconds.
    setup = ObservationSetup(
        name="demo",
        channels=64,
        lowest_frequency=138.0,
        channel_bandwidth=6.0 / 64.0,
        samples_per_second=2000,
        samples_per_batch=2000,
    )
    grid = DMTrialGrid(n_dms=args.dms, step=1.0)
    true_dm = grid.values[args.dms // 2]
    pulsar = SyntheticPulsar(
        period_seconds=0.1, dm=float(true_dm), amplitude=1.2
    )
    source = CompositeSource((NoiseSource(sigma=1.0), PulsarSource(pulsar)))
    n_samples = setup.samples_per_second + max_delay_samples(setup, grid.last)
    data, _truth = source.generate(
        setup, n_samples, RandomStreams(args.seed)
    )
    device = device_by_name(args.device)
    output, plan = dedisperse(data, setup, grid, device=device)
    detection = detect_dm(output, grid.values)
    print(plan.describe())
    print(f"injected pulsar at DM {true_dm:.2f}")
    print(
        f"detected DM {detection.dm:.2f} (trial {detection.dm_index}) "
        f"with S/N {detection.snr:.1f}"
    )
    ok = abs(detection.dm - true_dm) <= grid.step
    print("detection:", "CORRECT" if ok else "WRONG")
    return 0 if ok else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import (
        SCENARIO_SETUPS,
        run_matrix,
        scenario_by_name,
        scenario_catalog,
        setup_by_key,
    )

    if args.action == "list":
        for scenario in scenario_catalog():
            marker = "empty " if scenario.expect_empty else "signal"
            print(f"  {scenario.name:22s} [{marker}] {scenario.description}")
        print(f"setups: {', '.join(s.key for s in SCENARIO_SETUPS)}")
        return 0

    scenarios = None
    if args.scenario:
        scenarios = tuple(
            scenario_by_name(name) for name in args.scenario
        )
    setups = None
    if args.setups:
        setups = tuple(setup_by_key(key) for key in args.setups)
    backends = (
        ("tiled", "vectorized")
        if args.backend == "both"
        else (args.backend,)
    )
    mode = {"run": "run", "record": "record", "check": "check"}[args.action]
    report = run_matrix(
        scenarios=scenarios,
        setups=setups,
        backends=backends,
        seed=args.seed,
        goldens_dir=args.goldens,
        mode=mode,
    )
    print(report.summary())
    if mode == "record":
        print(f"goldens recorded under {report.goldens_dir}")
    if args.bench:
        from pathlib import Path

        path = Path(args.bench)
        path.write_text(
            json.dumps(report.bench_document(), indent=1, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path}")
    _persist_obs(quiet=True)
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-dedisp",
        description="Auto-tuning dedispersion reproduction (Sclocco et al. 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="print Table I").set_defaults(
        func=_cmd_devices
    )

    tune = sub.add_parser("tune", help="auto-tune one combination")
    tune.add_argument("--device", default="HD7970")
    tune.add_argument("--setup", default="apertif")
    tune.add_argument("--dms", type=int, default=1024)
    tune.add_argument("--dm-step", type=float, default=0.25)
    tune.add_argument("--zero-dm", action="store_true")
    tune.add_argument(
        "--save", metavar="PATH", default="",
        help="persist the sweep as JSON for later --load",
    )
    tune.add_argument(
        "--load", metavar="PATH", default="",
        help="load a previously saved sweep instead of re-tuning",
    )
    tune.add_argument(
        "--strategy",
        choices=["exhaustive", "halving", "model-guided"],
        default="exhaustive",
        help="search strategy (non-exhaustive ones evaluate a fraction "
             "of the space; see docs/tuning.md)",
    )
    tune.set_defaults(func=_cmd_tune)

    ablate = sub.add_parser(
        "ablate", help="quantify each search heuristic's contribution"
    )
    ablate.add_argument(
        "--strategy", choices=["halving", "model-guided"],
        default="model-guided",
    )
    ablate.add_argument(
        "--devices", default="HD7970",
        help="comma-separated device names",
    )
    ablate.add_argument(
        "--setups", default="apertif,lofar",
        help="comma-separated setup names",
    )
    ablate.add_argument(
        "--instances", default="64,256",
        help="comma-separated DM counts",
    )
    ablate.add_argument("--dm-step", type=float, default=0.25)
    ablate.add_argument("--seed", type=int, default=0)
    ablate.add_argument(
        "--out", metavar="PATH", default="",
        help="also write the report as JSON to PATH",
    )
    ablate.set_defaults(func=_cmd_ablate)

    study = sub.add_parser(
        "study", help="run a declarative tuning study"
    )
    study.add_argument(
        "--config", metavar="PATH", default="",
        help="JSON StudyConfig document (overrides the other options)",
    )
    study.add_argument("--title", default="cli-study")
    study.add_argument("--devices", default="HD7970")
    study.add_argument("--setups", default="apertif")
    study.add_argument("--instances", default="64,256")
    study.add_argument(
        "--strategies", default="model-guided",
        help="comma-separated strategy names to evaluate",
    )
    study.add_argument("--dm-step", type=float, default=0.25)
    study.add_argument("--seed", type=int, default=0)
    study.add_argument(
        "--out", metavar="PATH", default="",
        help="persist the study result JSON to PATH",
    )
    study.set_defaults(func=_cmd_study)

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument(
        "id", choices=list(experiment_ids()) + ["all"], metavar="ID"
    )
    exp.add_argument(
        "--export", metavar="DIR", default="",
        help="also write the result as CSV and JSON into DIR",
    )
    exp.add_argument(
        "--plot", action="store_true",
        help="render figure experiments as an ASCII chart",
    )
    exp.set_defaults(func=_cmd_experiment)

    ddplan = sub.add_parser(
        "ddplan", help="smearing-optimal staged DM plan"
    )
    ddplan.add_argument("--setup", default="apertif")
    ddplan.add_argument("--max-dm", type=float, default=100.0)
    ddplan.add_argument("--tolerance", type=float, default=1.25)
    ddplan.add_argument("--compare-step", type=float, default=0.25)
    ddplan.set_defaults(func=_cmd_ddplan)

    service = sub.add_parser(
        "service", help="multi-tenant tuning fleet with cache statistics"
    )
    service.add_argument("--device", default="HD7970")
    service.add_argument("--setup", default="apertif")
    service.add_argument(
        "--instances", default="32,64,128,256",
        help="comma-separated DM counts tenants will request",
    )
    service.add_argument(
        "--replicas", type=int, default=1,
        help="tuning service replicas behind the shard router",
    )
    service.add_argument(
        "--tenants", "--clients", type=int, default=4, dest="tenants",
        help="concurrent tenant threads (one ServiceClient each)",
    )
    service.add_argument(
        "--load", "--requests", type=int, default=3, dest="load",
        help="requests per tenant per instance",
    )
    service.add_argument(
        "--workers", type=int, default=2,
        help="tuning worker threads per replica",
    )
    service.add_argument(
        "--timeout", type=float, default=None,
        help="per-request tuning budget in seconds before degrading",
    )
    service.add_argument(
        "--priority", choices=("low", "normal", "high"), default="normal",
        help="TuneRequest priority stamped on the generated load",
    )
    service.add_argument(
        "--strategy", default="",
        help="per-request search strategy name (e.g. model-guided)",
    )
    service.add_argument(
        "--admission-rate", type=float, default=None, metavar="TOKENS_PER_S",
        help="per-tenant token-bucket refill rate (enables admission)",
    )
    service.add_argument(
        "--admission-burst", type=float, default=8.0, metavar="TOKENS",
        help="per-tenant token-bucket capacity",
    )
    service.add_argument(
        "--store", metavar="DIR", default="",
        help="directory for the persistent sweep tier (shared by replicas)",
    )
    service.add_argument(
        "--warm-up", action="store_true",
        help="pre-tune all instances before starting the tenants",
    )
    service.add_argument(
        "--no-smoke", dest="smoke", action="store_false",
        help="skip the end-to-end pipeline smoke after the tenant traffic",
    )
    service.set_defaults(func=_cmd_service, smoke=True)

    sched = sub.add_parser(
        "sched", help="fault-tolerant sharded survey execution"
    )
    sched.add_argument(
        "--inventory", default="HD7970:3,GTX680:2",
        help="comma-separated device pool, NAME:COUNT[:COST]",
    )
    sched.add_argument("--setup", default="apertif")
    sched.add_argument("--dms", type=int, default=256)
    sched.add_argument("--dm-step", type=float, default=0.25)
    sched.add_argument(
        "--beams", type=int, default=48,
        help="beams to host (the default needs >1 device, so an "
             "injected crash leaves survivors)",
    )
    sched.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds of sky per beam",
    )
    sched.add_argument("--seed", type=int, default=0)
    sched.add_argument(
        "--inject", action="store_true",
        help="inject the default fault scenario "
             "(1 crash, one 4x straggler, 5%% transient errors)",
    )
    sched.add_argument(
        "--no-steal", action="store_true",
        help="disable work stealing (to measure its benefit)",
    )
    sched.add_argument(
        "--max-dms-per-shard", type=int, default=64,
        help="cap the DM chunk per shard (finer load balancing)",
    )
    sched.add_argument(
        "--ledger", metavar="PATH", default="",
        help="write the run ledger JSON to PATH",
    )
    sched.add_argument(
        "--resume", metavar="PATH", default="",
        help="resume from a saved ledger (completed shards are skipped)",
    )
    sched.set_defaults(func=_cmd_sched)

    obs = sub.add_parser(
        "obs", help="dump/export/reset the observability snapshot"
    )
    obs.add_argument(
        "action", choices=["dump", "export", "reset"],
        help="dump: human table; export: machine format; reset: clear",
    )
    obs.add_argument(
        "--format", choices=["prom", "jsonl", "json"], default="prom",
        help="export format (Prometheus text, JSON lines, JSON snapshot)",
    )
    obs.add_argument(
        "--input", metavar="PATH", default="",
        help="snapshot file (default: $REPRO_OBS_PATH or .repro-obs.json)",
    )
    obs.add_argument(
        "--output", metavar="PATH", default="",
        help="write the export to PATH instead of stdout",
    )
    obs.set_defaults(func=_cmd_obs)

    search = sub.add_parser(
        "search", help="real-time candidate search on a synthetic stream"
    )
    search.add_argument("--device", default="HD7970")
    search.add_argument("--setup", default="apertif")
    search.add_argument(
        "--backend",
        choices=["tiled", "vectorized", "channel_tile", "auto", "both"],
        default="both",
        help="kernel executor(s); 'both' runs tiled then vectorized",
    )
    search.add_argument(
        "--staged", action="store_true",
        help="run the staged (materialise-the-plane) path instead of the "
             "fused dedisperse→detect default, for comparison",
    )
    search.add_argument(
        "--dms", type=int, default=32, help="trial-DM count"
    )
    search.add_argument("--dm-step", type=float, default=1.0)
    search.add_argument(
        "--chunks", type=int, default=3, help="stream chunks to search"
    )
    search.add_argument(
        "--samples", type=int, default=1000,
        help="output samples per chunk (0: the setup's full batch)",
    )
    search.add_argument(
        "--threshold", type=float, default=6.0,
        help="detection S/N floor",
    )
    search.add_argument("--seed", type=int, default=0)
    search.add_argument(
        "--no-rfi", dest="rfi", action="store_false",
        help="skip channel masking and the zero-DM filter",
    )
    search.set_defaults(func=_cmd_search, rfi=True)

    survey = sub.add_parser(
        "survey",
        help="resumable multi-beam survey with cross-beam "
        "coincidence vetoing",
    )
    survey.add_argument(
        "--scenario", default="giant_pulse_train",
        help="catalogue scenario realized beam-correlated "
        "(default: giant_pulse_train)",
    )
    survey.add_argument(
        "--setup", default="low", choices=("low", "high"),
        help="benchmark setup column",
    )
    survey.add_argument(
        "--beams", type=int, default=8, help="beam count"
    )
    survey.add_argument(
        "--dms", type=int, default=None,
        help="override the setup's trial-DM count",
    )
    survey.add_argument(
        "--chunks", type=int, default=None,
        help="override the scenario's chunk count",
    )
    survey.add_argument(
        "--backend",
        choices=("tiled", "vectorized", "auto", "both"),
        default="auto",
        help="kernel executor(s); 'both' runs tiled then vectorized",
    )
    survey.add_argument("--seed", type=int, default=0)
    survey.add_argument(
        "--signal-radius", type=int, default=1,
        help="beams around the centre carrying the signal",
    )
    survey.add_argument(
        "--attenuation", type=float, default=0.7,
        help="per-beam-step signal amplitude falloff",
    )
    survey.add_argument(
        "--inject", action="store_true",
        help="inject crashes/stragglers/transients into the fleet stage",
    )
    survey.add_argument(
        "--ledger", default=None, metavar="PATH",
        help="checkpoint completed beams to this JSONL survey ledger",
    )
    survey.add_argument(
        "--resume", action="store_true",
        help="load the --ledger first and skip its completed beams",
    )
    survey.add_argument(
        "--crash-after", type=int, default=None, metavar="N",
        help="inject a crash (partial ledger line) after N new beams",
    )
    survey.add_argument(
        "--smoke", action="store_true",
        help="acceptance gate: recall/FP thresholds plus the "
        "crash-resume byte-identity check",
    )
    survey.add_argument(
        "--bench", default=None, metavar="PATH",
        help="also write the BENCH_survey.json document to PATH",
    )
    survey.set_defaults(func=_cmd_survey)

    scen = sub.add_parser(
        "scenarios",
        help="seeded end-to-end scenarios with golden regression checks",
    )
    scen.add_argument(
        "action",
        choices=("list", "run", "record", "check"),
        help="list the catalogue, run the matrix, record or check goldens",
    )
    scen.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to one scenario (repeatable; default: all)",
    )
    scen.add_argument(
        "--setups",
        nargs="+",
        default=None,
        metavar="KEY",
        help="restrict to setup columns (default: all)",
    )
    scen.add_argument(
        "--backend",
        choices=("tiled", "vectorized", "both"),
        default="both",
        help="kernel backend(s); 'both' also asserts bit-identical parity",
    )
    scen.add_argument(
        "--seed", type=int, default=None,
        help="override the per-scenario seeds",
    )
    scen.add_argument(
        "--goldens", default=None, metavar="DIR",
        help="goldens directory (default: results/goldens)",
    )
    scen.add_argument(
        "--bench", default=None, metavar="PATH",
        help="also write the BENCH_scenarios.json document to PATH",
    )
    scen.set_defaults(func=_cmd_scenarios)

    demo = sub.add_parser("demo", help="end-to-end pulsar detection demo")
    demo.add_argument("--device", default="HD7970")
    demo.add_argument("--dms", type=int, default=32)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
