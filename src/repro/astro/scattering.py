"""Interstellar scattering: the smearing dedispersion cannot touch.

Multipath propagation through the turbulent interstellar medium convolves
every pulse with a one-sided exponential whose timescale grows steeply
with DM and falls steeply with frequency.  Unlike dispersion it cannot be
reversed at all — it sets a hard floor on time resolution at low
frequencies and is the reason low-frequency surveys (LOFAR) lose
sensitivity to distant (high-DM) sources no matter how finely they grid
their trials.

The implementation is the standard empirical relation of Bhat et al.
(2004), as used by survey-planning tools::

    log10 tau_us = -6.46 + 0.154 log10 DM + 1.07 (log10 DM)^2
                   - 3.86 log10 f_GHz

with ``tau`` in microseconds.  The measured scatter around this relation
is large (±0.65 dex); treat results as order-of-magnitude, which is how
planning uses them.
"""

from __future__ import annotations

import numpy as np

from repro.astro.observation import ObservationSetup
from repro.astro.sensitivity import smearing_attenuation
from repro.errors import ValidationError
from repro.utils.validation import require_positive

#: Coefficients of the Bhat et al. (2004) relation.
_BHAT_A: float = -6.46
_BHAT_B: float = 0.154
_BHAT_C: float = 1.07
_BHAT_FREQ_SLOPE: float = -3.86


def scattering_time_seconds(dm: float, frequency_mhz: float) -> float:
    """Empirical scattering timescale at ``dm`` and ``frequency`` (seconds)."""
    if dm < 0:
        raise ValidationError("dm must be non-negative")
    require_positive(frequency_mhz, "frequency_mhz")
    if dm == 0.0:
        return 0.0
    log_dm = np.log10(dm)
    log_tau_us = (
        _BHAT_A
        + _BHAT_B * log_dm
        + _BHAT_C * log_dm ** 2
        + _BHAT_FREQ_SLOPE * np.log10(frequency_mhz / 1000.0)
    )
    return float(10.0 ** log_tau_us * 1e-6)


def scattering_limited_dm(
    setup: ObservationSetup,
    max_smearing_seconds: float,
    dm_ceiling: float = 1e5,
    frequency_mhz: float | None = None,
) -> float:
    """The DM beyond which scattering alone exceeds the smearing budget.

    Evaluated at the setup's *lowest* channel by default (scattering is
    worst there); bisected because the relation is monotone in DM.
    Returns ``dm_ceiling`` when even that DM stays within budget.
    """
    require_positive(max_smearing_seconds, "max_smearing_seconds")
    frequency = (
        float(setup.channel_frequencies[0])
        if frequency_mhz is None
        else frequency_mhz
    )
    if scattering_time_seconds(dm_ceiling, frequency) <= max_smearing_seconds:
        return dm_ceiling
    lo, hi = 1e-3, dm_ceiling
    for _ in range(200):
        mid = np.sqrt(lo * hi)  # geometric: the relation is log-log
        if scattering_time_seconds(mid, frequency) > max_smearing_seconds:
            hi = mid
        else:
            lo = mid
    return float(lo)


def scattering_attenuation(
    setup: ObservationSetup,
    dm: float,
    pulse_width_seconds: float,
) -> float:
    """S/N fraction a pulse retains after scattering at this DM.

    Uses the band-centre scattering time and the matched-filter loss of
    :func:`repro.astro.sensitivity.smearing_attenuation`.
    """
    centre = float(np.median(setup.channel_frequencies))
    tau = scattering_time_seconds(dm, centre)
    return smearing_attenuation(pulse_width_seconds, tau)


def scattering_horizon(
    setup: ObservationSetup,
    pulse_width_seconds: float,
    min_retained: float = 0.5,
) -> float:
    """The DM at which scattering halves (by default) the recovered S/N.

    The survey's effective depth at this band: sources beyond it are
    scatter-broadened into the noise regardless of dedispersion quality.
    """
    require_positive(pulse_width_seconds, "pulse_width_seconds")
    if not 0.0 < min_retained < 1.0:
        raise ValidationError("min_retained must be in (0, 1)")
    # Invert the matched-filter loss for the target retention, then invert
    # the Bhat relation for the DM (at the band centre, matching
    # scattering_attenuation).
    # retained = sqrt(W / hypot(W, tau))  =>  tau = W * sqrt(r^-4 - 1)
    tau_target = pulse_width_seconds * float(
        np.sqrt(min_retained ** -4 - 1.0)
    )
    centre = float(np.median(setup.channel_frequencies))
    return scattering_limited_dm(setup, tau_target, frequency_mhz=centre)
