"""Synthetic channelised observations with dispersed pulsar injections.

The paper assumes telescope data is already resident in accelerator memory;
for an end-to-end reproduction we need that data.  This module produces
channelised time-series (the ``c x t`` single-precision matrix of
Sec. III-A) containing radiometer noise plus a periodic pulsar dispersed
according to Eq. 1, so that dedispersion at the true DM demonstrably
recovers the pulse while wrong trial DMs smear it below the noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.astro.dispersion import delay_table, dispersion_smearing_seconds
from repro.astro.observation import ObservationSetup
from repro.astro.pulse import PulseProfile, gaussian_profile
from repro.errors import ValidationError
from repro.utils.deprecation import warn_once
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class SyntheticPulsar:
    """A pulsar to inject: period, DM, per-channel amplitude and shape."""

    period_seconds: float
    dm: float
    amplitude: float = 1.0
    profile: PulseProfile = field(default_factory=gaussian_profile)
    spectral_index: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.period_seconds, "period_seconds")
        require_non_negative(self.dm, "dm")
        require_positive(self.amplitude, "amplitude")

    def channel_amplitudes(self, frequencies_mhz: np.ndarray) -> np.ndarray:
        """Per-channel amplitude following a power-law spectrum.

        Pulsars are steep-spectrum sources (S ~ f^alpha with alpha typically
        around -1.5); ``spectral_index=0`` keeps the injection flat, which is
        convenient for tests.
        """
        ref = float(frequencies_mhz[-1])
        return self.amplitude * (frequencies_mhz / ref) ** self.spectral_index


def inject_pulse(
    data: np.ndarray,
    setup: ObservationSetup,
    pulsar: SyntheticPulsar,
    smear: bool = True,
) -> np.ndarray:
    """Deprecated: use :class:`repro.astro.source.PulsarSource` instead.

    Behaviour is unchanged (delegates to the same injection physics the
    source wraps); the first call warns once per process.
    """
    warn_once(
        "inject_pulse",
        "inject_pulse() is deprecated; use the unified SignalSource API "
        "instead, e.g. PulsarSource(pulsar).add_to(data, setup, streams) "
        "(repro.astro.source)",
    )
    return _inject_pulse(data, setup, pulsar, smear=smear)


def _inject_pulse(
    data: np.ndarray,
    setup: ObservationSetup,
    pulsar: SyntheticPulsar,
    smear: bool = True,
) -> np.ndarray:
    """Add a dispersed periodic pulsar into ``data`` (shape ``(c, t)``).

    The pulse train is evaluated per channel at the channel's dispersed
    arrival phase; intra-channel smearing (which incoherent dedispersion
    cannot undo) widens the effective profile per channel when ``smear`` is
    true.  Returns ``data`` (modified in place) for chaining.
    """
    if data.ndim != 2 or data.shape[0] != setup.channels:
        raise ValidationError(
            f"data must have shape (channels={setup.channels}, t), got {data.shape}"
        )
    c, t = data.shape
    freqs = setup.channel_frequencies
    shifts = delay_table(setup, np.asarray([pulsar.dm]))[0]  # (c,)
    amps = pulsar.channel_amplitudes(freqs)
    times = np.arange(t, dtype=np.float64) / setup.samples_per_second
    base_width = pulsar.profile.width
    for ch in range(c):
        # Arrival time at this channel lags the reference by the dispersion
        # delay; phase is measured against the pulsar period.
        delay_s = shifts[ch] / setup.samples_per_second
        phase = (times - delay_s) / pulsar.period_seconds
        if smear:
            smear_s = dispersion_smearing_seconds(
                float(freqs[ch]), setup.channel_bandwidth, pulsar.dm
            )
            smear_phase = smear_s / pulsar.period_seconds
            width = float(np.hypot(base_width, smear_phase / 2.355))
            width = min(width, 0.49)
            # Substitute a widened Gaussian envelope at the profile's
            # centre; amplitude is scaled to conserve pulse fluence.
            centre = pulsar.profile.centre
            d = phase - centre
            d -= np.rint(d)
            contribution = np.exp(-0.5 * (d / width) ** 2) * (base_width / width)
        else:
            contribution = pulsar.profile.evaluate(phase)
        data[ch] += (amps[ch] * contribution).astype(data.dtype, copy=False)
    return data


def generate_observation(
    setup: ObservationSetup,
    duration_seconds: float,
    pulsars: tuple[SyntheticPulsar, ...] | list[SyntheticPulsar] = (),
    noise_sigma: float = 1.0,
    max_dm: float | None = None,
    rng: np.random.Generator | None = None,
    smear: bool = True,
) -> np.ndarray:
    """Deprecated: compose :class:`repro.astro.source.SignalSource` objects.

    Behaviour is unchanged, byte for byte; the first call warns once per
    process and points at the seeded replacement::

        CompositeSource((NoiseSource(sigma), PulsarSource(pulsar)))
            .generate(setup, n_samples, streams)
    """
    warn_once(
        "generate_observation",
        "generate_observation() is deprecated; compose seeded SignalSource "
        "objects instead, e.g. CompositeSource((NoiseSource(sigma), "
        "PulsarSource(pulsar))).generate(setup, n_samples, streams) "
        "(repro.astro.source)",
    )
    return _generate_observation(
        setup,
        duration_seconds,
        pulsars=pulsars,
        noise_sigma=noise_sigma,
        max_dm=max_dm,
        rng=rng,
        smear=smear,
    )


def _generate_observation(
    setup: ObservationSetup,
    duration_seconds: float,
    pulsars: tuple[SyntheticPulsar, ...] | list[SyntheticPulsar] = (),
    noise_sigma: float = 1.0,
    max_dm: float | None = None,
    rng: np.random.Generator | None = None,
    smear: bool = True,
) -> np.ndarray:
    """Produce a channelised time-series of shape ``(channels, t)``.

    ``t`` covers ``duration_seconds`` plus, when ``max_dm`` is given, the
    maximum dispersion delay so that every output sample of a subsequent
    dedispersion at DMs up to ``max_dm`` has valid input (the paper's
    definition of the input time dimension).
    """
    require_positive(duration_seconds, "duration_seconds")
    require_non_negative(noise_sigma, "noise_sigma")
    rng = rng or np.random.default_rng(0)

    samples = int(round(duration_seconds * setup.samples_per_second))
    if max_dm is not None:
        from repro.astro.dispersion import max_delay_samples

        samples += max_delay_samples(setup, max_dm)
    if samples <= 0:
        raise ValidationError("observation would contain no samples")

    if noise_sigma > 0:
        data = rng.normal(0.0, noise_sigma, size=(setup.channels, samples))
        data = data.astype(np.float32)
    else:
        data = np.zeros((setup.channels, samples), dtype=np.float32)
    for pulsar in pulsars:
        _inject_pulse(data, setup, pulsar, smear=smear)
    return data
