"""SIGPROC filterbank file I/O.

Channelised time-series are interchanged between real pulsar tools
(SIGPROC, PRESTO, dedisp, Heimdall) as ``.fil`` files: a self-describing
binary header of ``(length-prefixed keyword, value)`` pairs between
``HEADER_START``/``HEADER_END`` markers, followed by raw samples ordered
time-major (one spectrum of ``nchans`` values per time step).

This module reads and writes that format for 8-bit and 32-bit data, so
synthetic observations from :mod:`repro.astro.signal_gen` can be exported
to real tools and real recordings can be pulled into this pipeline.

SIGPROC convention notes honoured here:

* ``fch1`` is the centre frequency of the *first stored channel* and
  ``foff`` the channel offset; SIGPROC files normally store the highest
  frequency first (``foff < 0``), while this library's arrays are
  lowest-first — the reader/writer flips as needed.
* ``tsamp`` is the sampling interval in seconds.
* data are stored time-major; this library's arrays are channel-major —
  transposed on the way in/out.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.astro.observation import ObservationSetup
from repro.errors import ValidationError

_HEADER_START = b"HEADER_START"
_HEADER_END = b"HEADER_END"

#: Header keywords and their value codecs.
_INT_KEYS = {"nchans", "nbits", "nifs", "machine_id", "telescope_id",
             "data_type", "barycentric"}
_DOUBLE_KEYS = {"fch1", "foff", "tsamp", "tstart", "src_raj", "src_dej"}
_STRING_KEYS = {"source_name", "rawdatafile"}


def _write_string(buffer: bytearray, text: str) -> None:
    encoded = text.encode("ascii")
    buffer += struct.pack("<i", len(encoded)) + encoded


def _write_keyword(buffer: bytearray, key: str, value) -> None:
    _write_string(buffer, key)
    if key in _INT_KEYS:
        buffer += struct.pack("<i", int(value))
    elif key in _DOUBLE_KEYS:
        buffer += struct.pack("<d", float(value))
    elif key in _STRING_KEYS:
        _write_string(buffer, str(value))
    else:
        raise ValidationError(f"unknown filterbank keyword {key!r}")


@dataclass(frozen=True)
class FilterbankHeader:
    """Parsed metadata of a filterbank file."""

    nchans: int
    nbits: int
    fch1_mhz: float
    foff_mhz: float
    tsamp_s: float
    nsamples: int
    source_name: str = ""
    tstart_mjd: float = 50000.0
    nifs: int = 1

    def to_setup(self, name: str = "") -> ObservationSetup:
        """Build the equivalent :class:`ObservationSetup` (lowest-first)."""
        bandwidth = abs(self.foff_mhz)
        lowest_centre = (
            self.fch1_mhz + (self.nchans - 1) * self.foff_mhz
            if self.foff_mhz < 0
            else self.fch1_mhz
        )
        return ObservationSetup(
            name=name or (self.source_name or "filterbank"),
            channels=self.nchans,
            lowest_frequency=lowest_centre - 0.5 * bandwidth,
            channel_bandwidth=bandwidth,
            samples_per_second=int(round(1.0 / self.tsamp_s)),
        )


def write_filterbank(
    path: str | Path,
    data: np.ndarray,
    setup: ObservationSetup,
    nbits: int = 32,
    source_name: str = "synthetic",
    tstart_mjd: float = 50000.0,
) -> FilterbankHeader:
    """Write channelised data (channels-major, lowest-first) as ``.fil``.

    ``nbits=8`` quantises via :func:`repro.astro.quantization.quantize`;
    ``nbits=32`` stores float32 verbatim.
    """
    data = np.asarray(data)
    if data.ndim != 2 or data.shape[0] != setup.channels:
        raise ValidationError(
            f"data must have shape (channels={setup.channels}, t), "
            f"got {data.shape}"
        )
    if nbits not in (8, 32):
        raise ValidationError("nbits must be 8 or 32")

    freqs = setup.channel_frequencies
    # SIGPROC convention: highest frequency first, negative offset.
    fch1 = float(freqs[-1])
    foff = -setup.channel_bandwidth

    buffer = bytearray()
    _write_string(buffer, _HEADER_START.decode())
    _write_keyword(buffer, "source_name", source_name)
    _write_keyword(buffer, "machine_id", 0)
    _write_keyword(buffer, "telescope_id", 0)
    _write_keyword(buffer, "data_type", 1)  # filterbank
    _write_keyword(buffer, "fch1", fch1)
    _write_keyword(buffer, "foff", foff)
    _write_keyword(buffer, "nchans", setup.channels)
    _write_keyword(buffer, "nbits", nbits)
    _write_keyword(buffer, "tstart", tstart_mjd)
    _write_keyword(buffer, "tsamp", 1.0 / setup.samples_per_second)
    _write_keyword(buffer, "nifs", 1)
    _write_string(buffer, _HEADER_END.decode())

    # Flip to highest-first, then transpose to time-major for storage.
    if nbits == 8:
        from repro.astro.quantization import quantize

        stored = quantize(data, nbits=8).data
        payload = np.ascontiguousarray(stored[::-1].T).tobytes()
    else:
        payload = np.ascontiguousarray(data[::-1].T).astype("<f4").tobytes()

    path = Path(path)
    path.write_bytes(bytes(buffer) + payload)
    return FilterbankHeader(
        nchans=setup.channels,
        nbits=nbits,
        fch1_mhz=fch1,
        foff_mhz=foff,
        tsamp_s=1.0 / setup.samples_per_second,
        nsamples=data.shape[1],
        source_name=source_name,
        tstart_mjd=tstart_mjd,
    )


def _read_string(raw: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<i", raw, offset)
    offset += 4
    if not 0 < length < 256:
        raise ValidationError(f"corrupt filterbank string length {length}")
    text = raw[offset : offset + length].decode("ascii")
    return text, offset + length


def read_filterbank(
    path: str | Path,
) -> tuple[FilterbankHeader, np.ndarray]:
    """Read a ``.fil`` file; returns (header, channels-major float32 data).

    Data come back in this library's convention: lowest frequency first,
    shape ``(channels, samples)``, float32 (8-bit payloads are promoted).
    """
    raw = Path(path).read_bytes()
    text, offset = _read_string(raw, 0)
    if text != _HEADER_START.decode():
        raise ValidationError("not a filterbank file (missing HEADER_START)")

    fields: dict = {"nifs": 1, "source_name": "", "tstart": 50000.0}
    while True:
        key, offset = _read_string(raw, offset)
        if key == _HEADER_END.decode():
            break
        if key in _INT_KEYS:
            (fields[key],) = struct.unpack_from("<i", raw, offset)
            offset += 4
        elif key in _DOUBLE_KEYS:
            (fields[key],) = struct.unpack_from("<d", raw, offset)
            offset += 8
        elif key in _STRING_KEYS:
            fields[key], offset = _read_string(raw, offset)
        else:
            raise ValidationError(f"unknown filterbank keyword {key!r}")

    for required in ("nchans", "nbits", "fch1", "foff", "tsamp"):
        if required not in fields:
            raise ValidationError(f"filterbank header missing {required!r}")

    nchans = fields["nchans"]
    nbits = fields["nbits"]
    payload = raw[offset:]
    if nbits == 32:
        if len(payload) % 4:
            raise ValidationError(
                "payload size not a multiple of the sample width"
            )
        flat = np.frombuffer(payload, dtype="<f4")
    elif nbits == 8:
        flat = np.frombuffer(payload, dtype=np.uint8).astype(np.float32)
    else:
        raise ValidationError(f"unsupported nbits {nbits}")
    if flat.size % nchans:
        raise ValidationError("payload size not a multiple of nchans")
    nsamples = flat.size // nchans
    spectra = flat.reshape(nsamples, nchans).T  # channels-major
    if fields["foff"] < 0:
        spectra = spectra[::-1]  # back to lowest-first

    header = FilterbankHeader(
        nchans=nchans,
        nbits=nbits,
        fch1_mhz=fields["fch1"],
        foff_mhz=fields["foff"],
        tsamp_s=fields["tsamp"],
        nsamples=nsamples,
        source_name=fields.get("source_name", ""),
        tstart_mjd=fields.get("tstart", 50000.0),
        nifs=fields.get("nifs", 1),
    )
    return header, np.ascontiguousarray(spectra, dtype=np.float32)
