"""Smearing-optimal DM-trial planning (the classic "DDplan" analysis).

The paper fixes its DM step at 0.25 pc/cm^3; production surveys instead
*derive* the step from the smearing budget: a trial grid is fine enough
when the smearing caused by being half a step off in DM stays below the
effective time resolution.  The four smearing contributions at a trial DM
(see Lorimer & Kramer, Handbook of Pulsar Astronomy, ch. 6):

* **sampling** — the time resolution itself;
* **intra-channel** — dispersion across one channel's bandwidth, which
  no incoherent method can undo;
* **DM-step** — misalignment across the whole band from being up to half
  a DM step away from the source's true DM;
* (optionally the pulse's intrinsic width, which we leave to the caller).

Since intra-channel smearing grows linearly with DM, high-DM trials can
tolerate a coarser step and a downsampled time series — the staged plans
this module produces, mirroring PRESTO's ``DDplan.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import (
    dispersion_delay_seconds,
    dispersion_smearing_seconds,
)
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import ValidationError
from repro.utils.validation import require_positive


def band_delay_span_seconds(setup: ObservationSetup, dm: float) -> float:
    """Delay spread across the whole band at ``dm`` (seconds)."""
    return float(
        dispersion_delay_seconds(
            float(setup.channel_frequencies[0]),
            setup.reference_frequency,
            dm,
        )
    )


def dm_step_smearing_seconds(setup: ObservationSetup, dm_step: float) -> float:
    """Smearing from being half a DM step off, across the band (seconds)."""
    return 0.5 * band_delay_span_seconds(setup, dm_step)


def total_smearing_seconds(
    setup: ObservationSetup,
    dm: float,
    dm_step: float,
    downsample: int = 1,
) -> float:
    """Quadrature sum of sampling, intra-channel and DM-step smearing."""
    t_samp = downsample / setup.samples_per_second
    centre = float(np.median(setup.channel_frequencies))
    t_chan = dispersion_smearing_seconds(
        centre, setup.channel_bandwidth, dm
    )
    t_step = dm_step_smearing_seconds(setup, dm_step)
    return float(np.sqrt(t_samp ** 2 + t_chan ** 2 + t_step ** 2))


def optimal_dm_step(
    setup: ObservationSetup,
    dm: float,
    downsample: int = 1,
    tolerance: float = 1.25,
) -> float:
    """The largest DM step whose smearing stays within tolerance.

    Chosen so the *total* smearing exceeds the unavoidable part (sampling
    + intra-channel) by at most ``tolerance`` — the standard DDplan rule.
    """
    if tolerance <= 1.0:
        raise ValidationError("tolerance must exceed 1.0")
    t_samp = downsample / setup.samples_per_second
    centre = float(np.median(setup.channel_frequencies))
    t_chan = dispersion_smearing_seconds(centre, setup.channel_bandwidth, dm)
    floor = np.hypot(t_samp, t_chan)
    budget = floor * np.sqrt(tolerance ** 2 - 1.0)
    unit = dm_step_smearing_seconds(setup, 1.0)  # seconds per DM unit step
    return float(budget / unit)


@dataclass(frozen=True)
class DDPlanStage:
    """One stage of a staged dedispersion plan."""

    dm_low: float
    dm_high: float
    dm_step: float
    downsample: int
    n_dms: int

    @property
    def grid(self) -> DMTrialGrid:
        """The stage's trial grid."""
        return DMTrialGrid(n_dms=self.n_dms, first=self.dm_low, step=self.dm_step)

    def describe(self) -> str:
        """One-line rendering."""
        return (
            f"DM {self.dm_low:8.2f}..{self.dm_high:8.2f} "
            f"step {self.dm_step:8.4f} x{self.downsample} downsample "
            f"({self.n_dms} trials)"
        )


@dataclass(frozen=True)
class DDPlan:
    """A complete staged plan covering ``[0, max_dm]``."""

    setup_name: str
    max_dm: float
    tolerance: float
    stages: tuple[DDPlanStage, ...]

    @property
    def total_trials(self) -> int:
        """Trials across all stages."""
        return sum(stage.n_dms for stage in self.stages)

    def naive_trials(self, fixed_step: float) -> int:
        """Trials a fixed-step plan would need for the same coverage."""
        if fixed_step <= 0:
            raise ValidationError("fixed_step must be positive")
        return int(np.ceil(self.max_dm / fixed_step)) + 1

    def describe(self) -> str:
        """Multi-line rendering of the plan."""
        lines = [
            f"DDplan for {self.setup_name}: DM 0..{self.max_dm} "
            f"(tolerance {self.tolerance})"
        ]
        lines += ["  " + stage.describe() for stage in self.stages]
        lines.append(f"  total: {self.total_trials} trials")
        return "\n".join(lines)


def build_ddplan(
    setup: ObservationSetup,
    max_dm: float,
    tolerance: float = 1.25,
    max_downsample: int = 16,
) -> DDPlan:
    """Build a staged, smearing-optimal plan for ``[0, max_dm]``.

    Walks up in DM; whenever the intra-channel smearing has grown past the
    sampling time of the current stage, the time series is downsampled 2x
    (no information is lost — the pulse is already wider than the new
    sample) and the DM step re-derived.
    """
    require_positive(max_dm, "max_dm")
    if tolerance <= 1.0:
        raise ValidationError("tolerance must exceed 1.0")

    centre = float(np.median(setup.channel_frequencies))
    stages: list[DDPlanStage] = []
    dm = 0.0
    downsample = 1
    while dm < max_dm:
        # Grow the downsampling while channel smearing dominates sampling.
        while (
            downsample < max_downsample
            and dispersion_smearing_seconds(
                centre, setup.channel_bandwidth, dm if dm > 0 else 1e-3
            )
            > 2.0 * downsample / setup.samples_per_second
        ):
            downsample *= 2
        step = optimal_dm_step(setup, max(dm, 1e-3), downsample, tolerance)
        # The stage ends where the next downsampling level would kick in:
        # the DM at which channel smearing reaches 2x this sampling time.
        t_samp = downsample / setup.samples_per_second
        smear_per_dm = dispersion_smearing_seconds(
            centre, setup.channel_bandwidth, 1.0
        )
        boundary = (
            (2.0 * t_samp) / smear_per_dm
            if downsample < max_downsample
            else max_dm
        )
        stage_high = min(max(boundary, dm + step), max_dm)
        n_dms = max(int(np.ceil((stage_high - dm) / step)), 1)
        stages.append(
            DDPlanStage(
                dm_low=dm,
                dm_high=dm + n_dms * step,
                dm_step=step,
                downsample=downsample,
                n_dms=n_dms,
            )
        )
        dm += n_dms * step
        if downsample < max_downsample:
            downsample *= 2
    return DDPlan(
        setup_name=setup.name,
        max_dm=max_dm,
        tolerance=tolerance,
        stages=tuple(stages),
    )
