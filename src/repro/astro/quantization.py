"""Input quantization: the 8-bit samples real telescopes actually deliver.

The paper's analysis assumes single-precision (4-byte) samples, giving the
Eq. 2 bound ``AI < 1/4``.  Real back-ends (Apertif, LOFAR, and the
AMBER pipeline the authors later built) deliver 8-bit — sometimes 2-bit —
samples, which quarters the input traffic and correspondingly *raises*
the arithmetic-intensity bound: with ``b`` bytes per input sample,

    AI < 1 / (b + eps).

This module provides the digitiser model (mean/sigma-anchored linear
quantisation, the standard radio-astronomy convention), the dequantiser,
the S/N-loss accounting, and the modified AI bound, so the repository can
quantify what the paper's FP32 assumption costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError

#: Digitiser head-room: the represented range spans +/- this many sigma
#: around the mean (the classical choice for 8-bit pulsar back-ends).
DEFAULT_SIGMA_RANGE: float = 6.0

#: Quantisation efficiency (fraction of S/N retained) for common depths,
#: from the classical Thompson/Moran/Swenson analysis.
QUANTIZATION_EFFICIENCY: dict[int, float] = {
    1: 0.64,
    2: 0.88,
    4: 0.98,
    8: 0.999,
}


@dataclass(frozen=True)
class QuantizedData:
    """Quantised samples plus the affine transform to undo them."""

    data: np.ndarray  # uint8, same shape as the input
    scale: float
    offset: float
    nbits: int

    def dequantize(self) -> np.ndarray:
        """Recover float32 samples (up to the quantisation error)."""
        return (
            self.data.astype(np.float32) * np.float32(self.scale)
            + np.float32(self.offset)
        )

    @property
    def step(self) -> float:
        """The quantisation step in input units."""
        return self.scale


def quantize(
    data: np.ndarray,
    nbits: int = 8,
    sigma_range: float = DEFAULT_SIGMA_RANGE,
) -> QuantizedData:
    """Linearly quantise float samples to ``nbits`` unsigned levels.

    The representable range is ``mean +/- sigma_range * std`` of the input
    (values outside saturate), matching how telescope digitisers are
    levelled against the radiometer noise.
    """
    if nbits not in (1, 2, 4, 8):
        raise ValidationError("nbits must be one of 1, 2, 4, 8")
    if sigma_range <= 0:
        raise ValidationError("sigma_range must be positive")
    data = np.asarray(data, dtype=np.float64)
    levels = (1 << nbits) - 1
    mean = float(data.mean())
    std = float(data.std())
    if std == 0.0:
        std = 1.0
    low = mean - sigma_range * std
    high = mean + sigma_range * std
    scale = (high - low) / levels
    codes = np.rint((data - low) / scale)
    codes = np.clip(codes, 0, levels).astype(np.uint8)
    return QuantizedData(data=codes, scale=scale, offset=low, nbits=nbits)


def quantization_noise_sigma(scale: float) -> float:
    """RMS error of a uniform quantiser with step ``scale``."""
    if scale <= 0:
        raise ValidationError("scale must be positive")
    return scale / np.sqrt(12.0)


def snr_efficiency(nbits: int) -> float:
    """Fraction of S/N a correlating system retains at this bit depth."""
    try:
        return QUANTIZATION_EFFICIENCY[nbits]
    except KeyError:
        raise ValidationError("nbits must be one of 1, 2, 4, 8") from None


def ai_bound_with_input_bytes(bytes_per_sample: float, epsilon: float = 0.0) -> float:
    """Eq. 2 generalised to arbitrary input sample width.

    ``bytes_per_sample=4`` recovers the paper's 1/4 bound; 8-bit input
    lifts it to ~1, shifting dedispersion towards (but, on the paper's
    devices, still not across) the compute-bound regime.
    """
    if bytes_per_sample <= 0:
        raise ValidationError("bytes_per_sample must be positive")
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    return 1.0 / (bytes_per_sample + epsilon)
