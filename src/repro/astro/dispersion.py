"""Cold-plasma dispersion delay model (paper Eq. 1) and delay tables.

The delay of a frequency component ``f_i`` relative to the highest observed
frequency ``f_h`` for dispersion measure ``DM`` is::

    k ~= 4150 * DM * (1/f_i^2 - 1/f_h^2)   [seconds, frequencies in MHz]

Delays are precomputed into a (DM, channel) table of integer sample shifts,
exactly as the paper does ("these delays can be computed in advance, so they
do not contribute to the algorithm's complexity", Sec. III-A).

This module also quantifies *data-reuse spans*: for a contiguous tile of
trial DMs, the number of extra input samples a channel needs beyond the tile
width.  Small spans (high frequencies, e.g. Apertif) mean the per-DM input
windows overlap almost completely and can be reused; large spans (low
frequencies, e.g. LOFAR) preclude reuse.  This quantity drives both the
performance model and the paper's Eq. 3 discussion.
"""

from __future__ import annotations

import numpy as np

from repro.constants import DISPERSION_CONSTANT
from repro.errors import ValidationError
from repro.astro.observation import ObservationSetup


def dispersion_delay_seconds(
    frequency_mhz: float | np.ndarray,
    reference_mhz: float,
    dm: float | np.ndarray,
    dispersion_constant: float = DISPERSION_CONSTANT,
) -> float | np.ndarray:
    """Dispersion delay in seconds of ``frequency_mhz`` vs ``reference_mhz``.

    Vectorised over both frequency and DM (broadcasting).  Negative DMs are
    rejected; frequencies must be positive.  For ``frequency > reference``
    the delay is negative (that component arrives *earlier*), which callers
    normally avoid by choosing the highest frequency as reference.
    """
    freq = np.asarray(frequency_mhz, dtype=np.float64)
    dm_arr = np.asarray(dm, dtype=np.float64)
    if np.any(freq <= 0) or reference_mhz <= 0:
        raise ValidationError("frequencies must be positive")
    if np.any(dm_arr < 0):
        raise ValidationError("DM must be non-negative")
    delay = dispersion_constant * dm_arr * (1.0 / freq ** 2 - 1.0 / reference_mhz ** 2)
    if np.isscalar(frequency_mhz) and np.isscalar(dm):
        return float(delay)
    return delay


def delay_samples(
    frequency_mhz: float | np.ndarray,
    reference_mhz: float,
    dm: float | np.ndarray,
    samples_per_second: int,
    dispersion_constant: float = DISPERSION_CONSTANT,
) -> float | np.ndarray:
    """Dispersion delay expressed in (fractional) samples."""
    delay = dispersion_delay_seconds(
        frequency_mhz, reference_mhz, dm, dispersion_constant
    )
    return delay * samples_per_second


def delay_table(
    setup: ObservationSetup,
    dms: np.ndarray,
    dispersion_constant: float = DISPERSION_CONSTANT,
) -> np.ndarray:
    """Integer sample-shift table of shape ``(len(dms), channels)``.

    ``table[d, c]`` is the number of samples channel ``c`` must be shifted
    *back* in time to align with the reference (highest) frequency for trial
    DM ``dms[d]``.  Shifts are rounded to the nearest sample, are always
    non-negative, and the reference channel's shift is zero for every DM.
    """
    dms = np.asarray(dms, dtype=np.float64)
    if dms.ndim != 1:
        raise ValidationError(f"dms must be 1-D, got shape {dms.shape}")
    if np.any(dms < 0):
        raise ValidationError("trial DMs must be non-negative")
    freqs = setup.channel_frequencies  # (c,)
    fractional = delay_samples(
        freqs[np.newaxis, :],
        setup.reference_frequency,
        dms[:, np.newaxis],
        setup.samples_per_second,
        dispersion_constant,
    )
    table = np.rint(fractional).astype(np.int64)
    # The reference is the centre of the top channel, so its own delay is
    # exactly zero and every other channel's delay is non-negative.
    return table


def max_delay_samples(setup: ObservationSetup, max_dm: float) -> int:
    """Largest sample shift across all channels at DM ``max_dm``."""
    if max_dm < 0:
        raise ValidationError("max_dm must be non-negative")
    shift = delay_samples(
        float(setup.channel_frequencies[0]),
        setup.reference_frequency,
        max_dm,
        setup.samples_per_second,
    )
    return int(np.rint(shift))


def dispersion_smearing_seconds(
    frequency_mhz: float,
    channel_bandwidth_mhz: float,
    dm: float,
    dispersion_constant: float = DISPERSION_CONSTANT,
) -> float:
    """Intra-channel dispersion smearing time at a channel (seconds).

    The residual smearing inside one channel of width ``channel_bandwidth``
    centred on ``frequency``; the classical ``8.3e3 * DM * df / f^3`` us
    formula expressed through the same dispersion constant used elsewhere.
    Incoherent dedispersion cannot remove this smearing; it sets the optimal
    DM-step and is used by signal generation to smear injected pulses.
    """
    if frequency_mhz <= 0 or channel_bandwidth_mhz <= 0:
        raise ValidationError("frequency and bandwidth must be positive")
    if dm < 0:
        raise ValidationError("DM must be non-negative")
    return (
        2.0
        * dispersion_constant
        * dm
        * channel_bandwidth_mhz
        / frequency_mhz ** 3
    )


def reuse_span_samples(
    setup: ObservationSetup,
    dm_low: float,
    dm_high: float,
) -> np.ndarray:
    """Per-channel delay span (samples) across the DM interval, shape (c,).

    ``span[c] = delay(c, dm_high) - delay(c, dm_low)`` in integer samples.
    A work-group that computes every DM in ``[dm_low, dm_high]`` must load
    ``tile_width + span[c]`` samples of channel ``c``; the smaller the span
    relative to the tile width, the more reuse is available (Sec. III-A).
    """
    if dm_high < dm_low:
        raise ValidationError("dm_high must be >= dm_low")
    table = delay_table(setup, np.asarray([dm_low, dm_high]))
    return (table[1] - table[0]).astype(np.int64)


def average_reuse_factor(
    setup: ObservationSetup,
    dm_low: float,
    dm_high: float,
    n_dms_in_tile: int,
    tile_samples: int,
) -> float:
    """Achievable read-reuse factor for a (DM-tile x sample-tile) block.

    The ratio between the traffic of a reuse-less kernel (every DM row loads
    its own window: ``n_dms * tile_samples`` per channel) and a perfectly
    sharing kernel (one window of ``tile_samples + span`` per channel),
    averaged over channels.  Equals ``n_dms_in_tile`` when spans are zero
    (the paper's 0-DM experiment) and approaches 1 when spans dwarf the tile.
    """
    if n_dms_in_tile <= 0 or tile_samples <= 0:
        raise ValidationError("tile dimensions must be positive")
    spans = reuse_span_samples(setup, dm_low, dm_high).astype(np.float64)
    naive = float(n_dms_in_tile * tile_samples * setup.channels)
    shared = float(np.sum(tile_samples + spans))
    return naive / shared
