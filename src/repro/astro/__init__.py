"""Radio-astronomy substrate: observations, dispersion physics, signals.

This subpackage implements everything the dedispersion kernel consumes or
produces: observational setups (Apertif, LOFAR), the cold-plasma dispersion
delay model (paper Eq. 1), DM-trial grids, synthetic pulsar signal
generation, and signal-to-noise measurement for detection.
"""

from repro.astro.observation import ObservationSetup, apertif, lofar
from repro.astro.dispersion import (
    dispersion_delay_seconds,
    delay_samples,
    delay_table,
    dispersion_smearing_seconds,
    reuse_span_samples,
)
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.pulse import (
    PulseProfile,
    gaussian_profile,
    von_mises_profile,
    scattered_profile,
)
from repro.astro.signal_gen import SyntheticPulsar, generate_observation, inject_pulse
from repro.astro.source import (
    BroadbandRFISource,
    BurstSource,
    BurstTrainSource,
    CompositeSource,
    NarrowbandRFISource,
    NoiseSource,
    PulsarSource,
    SignalComponent,
    SignalSource,
    SignalTruth,
    stream_chunks,
)
from repro.astro.snr import boxcar_snr, best_boxcar_snr, detect_dm, folded_profile
from repro.astro.telescope import Beam, Telescope, StreamChunk
from repro.astro.ddplan import (
    DDPlan,
    DDPlanStage,
    build_ddplan,
    optimal_dm_step,
    total_smearing_seconds,
)
from repro.astro.periodicity import (
    PeriodicityCandidate,
    harmonic_sum,
    power_spectrum,
    search_periodicity,
)
from repro.astro.candidates import (
    Candidate,
    SiftedCandidate,
    find_candidates,
    search_and_sift,
    sift,
)
from repro.astro.filterbank import (
    FilterbankHeader,
    read_filterbank,
    write_filterbank,
)
from repro.astro.quantization import (
    QuantizedData,
    ai_bound_with_input_bytes,
    quantize,
    snr_efficiency,
)
from repro.astro.folding import FoldVerdict, fold_candidate, folded_snr
from repro.astro.scattering import (
    scattering_attenuation,
    scattering_horizon,
    scattering_time_seconds,
)
from repro.astro.sensitivity import (
    dm_error_attenuation,
    half_power_dm_error,
    sensitivity_curve,
    step_sensitivity,
)
from repro.astro.rfi import (
    ChannelMask,
    inject_broadband_rfi,
    inject_narrowband_rfi,
    mask_noisy_channels,
    zero_dm_filter,
)

__all__ = [
    "ObservationSetup",
    "apertif",
    "lofar",
    "dispersion_delay_seconds",
    "delay_samples",
    "delay_table",
    "dispersion_smearing_seconds",
    "reuse_span_samples",
    "DMTrialGrid",
    "PulseProfile",
    "gaussian_profile",
    "von_mises_profile",
    "scattered_profile",
    "SyntheticPulsar",
    "generate_observation",
    "inject_pulse",
    "SignalSource",
    "SignalTruth",
    "SignalComponent",
    "NoiseSource",
    "PulsarSource",
    "BurstSource",
    "BurstTrainSource",
    "BroadbandRFISource",
    "NarrowbandRFISource",
    "CompositeSource",
    "stream_chunks",
    "boxcar_snr",
    "best_boxcar_snr",
    "detect_dm",
    "folded_profile",
    "Beam",
    "Telescope",
    "StreamChunk",
    "DDPlan",
    "DDPlanStage",
    "build_ddplan",
    "optimal_dm_step",
    "total_smearing_seconds",
    "PeriodicityCandidate",
    "harmonic_sum",
    "power_spectrum",
    "search_periodicity",
    "ChannelMask",
    "inject_broadband_rfi",
    "inject_narrowband_rfi",
    "mask_noisy_channels",
    "zero_dm_filter",
    "Candidate",
    "SiftedCandidate",
    "find_candidates",
    "search_and_sift",
    "sift",
    "FilterbankHeader",
    "read_filterbank",
    "write_filterbank",
    "QuantizedData",
    "ai_bound_with_input_bytes",
    "quantize",
    "snr_efficiency",
    "dm_error_attenuation",
    "half_power_dm_error",
    "sensitivity_curve",
    "step_sensitivity",
    "FoldVerdict",
    "fold_candidate",
    "folded_snr",
    "scattering_attenuation",
    "scattering_horizon",
    "scattering_time_seconds",
]
