"""DM-trial grids: the brute-force search space over dispersion measures.

When searching for unknown sources the DM is one of the unknowns, so the
received signal is dedispersed for thousands of trial DMs (Sec. II).  The
paper uses a linear grid starting at 0 with a step of 0.25 pc/cm^3; the
0-DM experiment (Sec. IV-C) uses a degenerate grid where every trial is 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DEFAULT_DM_FIRST, DEFAULT_DM_STEP
from repro.utils.validation import require_non_negative, require_positive_int


@dataclass(frozen=True)
class DMTrialGrid:
    """A set of trial dispersion measures.

    ``step == 0`` encodes the paper's artificial perfect-reuse scenario in
    which every trial DM takes the same value (``first``), so all per-DM
    delay tables coincide and every dedispersed series is identical.
    """

    n_dms: int
    first: float = DEFAULT_DM_FIRST
    step: float = DEFAULT_DM_STEP

    def __post_init__(self) -> None:
        require_positive_int(self.n_dms, "n_dms")
        require_non_negative(self.first, "first")
        require_non_negative(self.step, "step")

    @property
    def values(self) -> np.ndarray:
        """Trial DM values, shape (n_dms,)."""
        return self.first + self.step * np.arange(self.n_dms, dtype=np.float64)

    @property
    def last(self) -> float:
        """The highest trial DM."""
        return self.first + self.step * (self.n_dms - 1)

    @property
    def is_degenerate(self) -> bool:
        """True for the 0-step (perfect data-reuse) grid of Sec. IV-C."""
        return self.step == 0.0

    def subgrid(self, start: int, count: int) -> "DMTrialGrid":
        """The grid restricted to trials ``[start, start + count)``."""
        require_non_negative(start, "start")
        require_positive_int(count, "count")
        if start + count > self.n_dms:
            raise IndexError(
                f"subgrid [{start}, {start + count}) exceeds {self.n_dms} trials"
            )
        return DMTrialGrid(
            n_dms=count, first=self.first + self.step * start, step=self.step
        )

    def index_of(self, dm: float) -> int:
        """Index of the trial closest to ``dm``."""
        if self.is_degenerate:
            return 0
        idx = int(round((dm - self.first) / self.step))
        return min(max(idx, 0), self.n_dms - 1)

    @classmethod
    def zero_dm(cls, n_dms: int) -> "DMTrialGrid":
        """The Sec. IV-C grid: ``n_dms`` trials, all with DM = 0."""
        return cls(n_dms=n_dms, first=0.0, step=0.0)
