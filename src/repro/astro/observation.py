"""Observational setups: channelisation, sampling, and FLOP accounting.

The paper evaluates two complementary setups (Sec. IV):

* **Apertif** (Westerbork): 20,000 samples/s, 300 MHz bandwidth split into
  1,024 channels of ~0.29 MHz, 1,420-1,720 MHz.  Computationally intensive
  (20 MFLOP per DM) with high available data-reuse (high frequencies =>
  small, slowly diverging delays).
* **LOFAR**: 200,000 samples/s, 6 MHz bandwidth split into 32 channels of
  ~0.19 MHz, 138-145 MHz.  Lighter per DM (~6 MFLOP) but with almost no
  exploitable data-reuse (low frequencies => rapidly diverging delays).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.constants import BYTES_PER_SAMPLE, FLOP_PER_ELEMENT
from repro.utils.validation import require, require_positive, require_positive_int


@dataclass(frozen=True)
class ObservationSetup:
    """A channelised observing configuration.

    Frequencies are in MHz.  ``lowest_frequency`` is the *bottom edge* of the
    lowest channel; channel centre frequencies are derived from it and
    ``channel_bandwidth``.  ``samples_per_second`` is the time resolution of
    the channelised time-series, and ``samples_per_batch`` is the number of
    output samples a single kernel invocation produces per DM (one second of
    data by default, following the paper's real-time framing).
    """

    name: str
    channels: int
    lowest_frequency: float
    channel_bandwidth: float
    samples_per_second: int
    samples_per_batch: int = 0  # defaults to samples_per_second

    def __post_init__(self) -> None:
        require(bool(self.name), "setup name must be non-empty")
        require_positive_int(self.channels, "channels")
        require_positive(self.lowest_frequency, "lowest_frequency")
        require_positive(self.channel_bandwidth, "channel_bandwidth")
        require_positive_int(self.samples_per_second, "samples_per_second")
        if self.samples_per_batch == 0:
            object.__setattr__(self, "samples_per_batch", self.samples_per_second)
        require_positive_int(self.samples_per_batch, "samples_per_batch")

    # ------------------------------------------------------------------
    # Frequency geometry
    # ------------------------------------------------------------------
    @property
    def bandwidth(self) -> float:
        """Total bandwidth in MHz."""
        return self.channels * self.channel_bandwidth

    @property
    def highest_frequency(self) -> float:
        """Top edge of the highest channel in MHz."""
        return self.lowest_frequency + self.bandwidth

    @cached_property
    def channel_frequencies(self) -> np.ndarray:
        """Centre frequency of every channel (MHz), ascending, shape (c,)."""
        edges = self.lowest_frequency + self.channel_bandwidth * np.arange(
            self.channels, dtype=np.float64
        )
        return edges + 0.5 * self.channel_bandwidth

    @property
    def reference_frequency(self) -> float:
        """Frequency (MHz) that dedispersion delays are measured against.

        The paper aligns every channel to the highest frequency (Eq. 1 uses
        ``f_h``); we use the centre of the top channel so the top channel's
        own delay is exactly zero.
        """
        return float(self.channel_frequencies[-1])

    # ------------------------------------------------------------------
    # Workload accounting
    # ------------------------------------------------------------------
    def flops_per_dm(self, samples: int | None = None) -> int:
        """FLOPs to dedisperse ``samples`` output samples for one trial DM.

        With the paper's accounting (one accumulate per channel per output
        sample) Apertif costs 20,000 x 1,024 ~= 20 MFLOP per DM and LOFAR
        200,000 x 32 = 6.4 MFLOP per DM, matching Sec. IV.
        """
        s = self.samples_per_batch if samples is None else samples
        require_positive_int(s, "samples")
        return FLOP_PER_ELEMENT * s * self.channels

    def total_flops(self, n_dms: int, samples: int | None = None) -> int:
        """FLOPs to dedisperse ``samples`` output samples for ``n_dms`` DMs."""
        require_positive_int(n_dms, "n_dms")
        return n_dms * self.flops_per_dm(samples)

    def realtime_gflops(self, n_dms: int) -> float:
        """GFLOP/s needed to dedisperse one second of data in one second.

        This is the "real-time" line in the paper's Figs. 6 and 7: below this
        sustained rate an implementation cannot keep up with the telescope.
        """
        return self.total_flops(n_dms, self.samples_per_second) / 1e9

    def input_bytes(self, n_dms: int, dm_step: float, samples: int | None = None) -> int:
        """Size of the channelised input needed for one batch.

        The time dimension must cover the batch plus the maximum delay at
        the highest trial DM (Sec. III-A: ``t`` is the number of samples
        necessary to dedisperse one second of data at the highest trial DM).
        """
        from repro.astro.dispersion import delay_samples  # local: avoid cycle

        s = self.samples_per_batch if samples is None else samples
        max_dm = (n_dms - 1) * dm_step
        max_delay = int(
            delay_samples(
                self.channel_frequencies[0],
                self.reference_frequency,
                max_dm,
                self.samples_per_second,
            )
        )
        return BYTES_PER_SAMPLE * self.channels * (s + max_delay)

    def output_bytes(self, n_dms: int, samples: int | None = None) -> int:
        """Size of the dedispersed output (d x s single-precision matrix)."""
        s = self.samples_per_batch if samples is None else samples
        return BYTES_PER_SAMPLE * n_dms * s

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: {self.channels} ch x {self.channel_bandwidth:.2f} MHz "
            f"[{self.lowest_frequency:.0f}-{self.highest_frequency:.0f} MHz], "
            f"{self.samples_per_second:,} samples/s"
        )


def apertif(samples_per_batch: int | None = None) -> ObservationSetup:
    """The paper's Apertif (Westerbork) setup (Sec. IV)."""
    return ObservationSetup(
        name="Apertif",
        channels=1024,
        lowest_frequency=1420.0,
        channel_bandwidth=300.0 / 1024.0,
        samples_per_second=20_000,
        samples_per_batch=samples_per_batch or 0,
    )


def lofar(samples_per_batch: int | None = None) -> ObservationSetup:
    """The paper's LOFAR setup (Sec. IV)."""
    return ObservationSetup(
        name="LOFAR",
        channels=32,
        lowest_frequency=138.0,
        channel_bandwidth=6.0 / 32.0,
        samples_per_second=200_000,
        samples_per_batch=samples_per_batch or 0,
    )
