"""Telescope front-end: beams and chunked data streams.

Modern telescopes form many simultaneous beams (Sec. II), each producing an
independent channelised stream that must be dedispersed in real time.  The
:class:`Telescope` abstraction produces per-beam :class:`StreamChunk`s that
the :mod:`repro.pipeline` consumes; chunks carry the overlap region (the
maximum dispersion delay) needed to dedisperse their final samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.astro.dispersion import max_delay_samples
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.astro.signal_gen import SyntheticPulsar, _generate_observation
from repro.errors import ValidationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class Beam:
    """One telescope beam: an index, a sky direction tag, and its sources."""

    index: int
    label: str = ""
    pulsars: tuple[SyntheticPulsar, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValidationError("beam index must be non-negative")
        if not self.label:
            object.__setattr__(self, "label", f"beam-{self.index:03d}")


@dataclass(frozen=True)
class StreamChunk:
    """One second-scale block of channelised data from one beam.

    ``data`` has shape ``(channels, samples + overlap)``: the trailing
    ``overlap`` samples duplicate the head of the next chunk so that the
    final output samples of this chunk can be dedispersed at the highest
    trial DM without waiting for future data.
    """

    beam_index: int
    sequence: int
    data: np.ndarray
    samples: int
    overlap: int

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise ValidationError("chunk data must be 2-D (channels, time)")
        if self.data.shape[1] != self.samples + self.overlap:
            raise ValidationError(
                f"chunk time dimension {self.data.shape[1]} != "
                f"samples {self.samples} + overlap {self.overlap}"
            )


@dataclass
class Telescope:
    """A multi-beam telescope producing synthetic channelised streams."""

    setup: ObservationSetup
    beams: list[Beam] = field(default_factory=list)
    noise_sigma: float = 1.0
    seed: int = 0

    def add_beam(self, pulsars: tuple[SyntheticPulsar, ...] = (), label: str = "") -> Beam:
        """Append a beam (optionally hosting pulsars) and return it."""
        beam = Beam(index=len(self.beams), label=label, pulsars=pulsars)
        self.beams.append(beam)
        return beam

    def overlap_samples(self, grid: DMTrialGrid) -> int:
        """Input overlap needed to dedisperse a chunk at the grid's max DM."""
        return max_delay_samples(self.setup, grid.last)

    def stream(
        self,
        beam: Beam,
        n_chunks: int,
        grid: DMTrialGrid,
        chunk_seconds: float = 1.0,
    ) -> Iterator[StreamChunk]:
        """Yield ``n_chunks`` consecutive chunks for ``beam``.

        Each chunk spans ``chunk_seconds`` of output samples plus the
        DM-dependent overlap.  Consecutive chunks are cut from one long
        contiguous synthetic observation, so a pulse spanning a chunk
        boundary is reproduced consistently.
        """
        require_positive_int(n_chunks, "n_chunks")
        samples = int(round(chunk_seconds * self.setup.samples_per_second))
        if samples <= 0:
            raise ValidationError("chunk_seconds too small for one sample")
        overlap = self.overlap_samples(grid)
        rng = np.random.default_rng(self.seed + beam.index)
        total_seconds = n_chunks * chunk_seconds
        data = _generate_observation(
            self.setup,
            total_seconds,
            pulsars=beam.pulsars,
            noise_sigma=self.noise_sigma,
            max_dm=grid.last,
            rng=rng,
        )
        for i in range(n_chunks):
            start = i * samples
            stop = start + samples + overlap
            yield StreamChunk(
                beam_index=beam.index,
                sequence=i,
                data=data[:, start:stop],
                samples=samples,
                overlap=overlap,
            )
