"""Signal-to-noise measurement and DM detection on dedispersed series.

After brute-force dedispersion, each trial DM yields a time-series; the
astrophysically interesting question is which trial maximises the recovered
pulse signal-to-noise.  We implement the standard single-pulse search
machinery: boxcar matched filtering across a range of widths, robust noise
estimation, folding at a known period, and a ``detect_dm`` helper that scans
all trials.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


def _robust_stats(series: np.ndarray) -> tuple[float, float]:
    """Median / MAD-based (mean, sigma) estimate, robust to bright pulses."""
    median = float(np.median(series))
    mad = float(np.median(np.abs(series - median)))
    sigma = 1.4826 * mad if mad > 0 else float(np.std(series)) or 1.0
    return median, sigma


def boxcar_snr(series: np.ndarray, width: int) -> np.ndarray:
    """S/N of a boxcar matched filter of ``width`` samples at each offset.

    The filter sums ``width`` consecutive samples; S/N normalisation divides
    by ``sigma * sqrt(width)`` so that white noise gives unit-variance
    output regardless of width.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValidationError("series must be 1-D")
    if width <= 0 or width > series.size:
        raise ValidationError(
            f"width must be in [1, {series.size}], got {width}"
        )
    mean, sigma = _robust_stats(series)
    centred = series - mean
    csum = np.concatenate(([0.0], np.cumsum(centred)))
    sums = csum[width:] - csum[:-width]
    return sums / (sigma * np.sqrt(width))


def best_boxcar_snr(
    series: np.ndarray, max_width: int | None = None
) -> tuple[float, int, int]:
    """Best (snr, width, offset) over powers-of-two boxcar widths."""
    series = np.asarray(series, dtype=np.float64)
    limit = max_width or max(1, series.size // 4)
    best = (-np.inf, 1, 0)
    width = 1
    while width <= limit:
        snr = boxcar_snr(series, width)
        idx = int(np.argmax(snr))
        if snr[idx] > best[0]:
            best = (float(snr[idx]), width, idx)
        width *= 2
    return best


@dataclass(frozen=True)
class DMDetection:
    """Result of scanning dedispersed trials for the best pulse S/N."""

    dm_index: int
    dm: float
    snr: float
    width: int
    offset: int
    snr_per_trial: np.ndarray

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DM {self.dm:.2f} (trial {self.dm_index}) "
            f"S/N {self.snr:.1f} width {self.width}"
        )


def detect_dm(
    dedispersed: np.ndarray,
    dms: np.ndarray,
    max_width: int | None = None,
) -> DMDetection:
    """Find the trial DM with the highest boxcar S/N.

    ``dedispersed`` has shape ``(n_dms, samples)`` (the ``d x s`` output
    matrix of Sec. III-A); ``dms`` the corresponding trial values.
    """
    dedispersed = np.asarray(dedispersed)
    if dedispersed.ndim != 2:
        raise ValidationError("dedispersed must have shape (n_dms, samples)")
    if dedispersed.shape[0] != len(dms):
        raise ValidationError("dms length must match dedispersed rows")
    per_trial = np.empty(dedispersed.shape[0], dtype=np.float64)
    best = (-np.inf, 0, 1, 0)
    for i in range(dedispersed.shape[0]):
        snr, width, offset = best_boxcar_snr(dedispersed[i], max_width)
        per_trial[i] = snr
        if snr > best[0]:
            best = (snr, i, width, offset)
    snr, idx, width, offset = best
    return DMDetection(
        dm_index=idx,
        dm=float(dms[idx]),
        snr=snr,
        width=width,
        offset=offset,
        snr_per_trial=per_trial,
    )


def folded_profile(
    series: np.ndarray,
    samples_per_second: int,
    period_seconds: float,
    n_bins: int = 64,
) -> np.ndarray:
    """Fold a time-series at a known period into ``n_bins`` phase bins.

    Folding integrates many pulses coherently in phase, the standard way to
    raise a weak periodic signal above the noise.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValidationError("series must be 1-D")
    if period_seconds <= 0 or samples_per_second <= 0 or n_bins <= 0:
        raise ValidationError("period, sample rate and n_bins must be positive")
    phases = (
        np.arange(series.size, dtype=np.float64) / samples_per_second
    ) / period_seconds
    bins = (np.mod(phases, 1.0) * n_bins).astype(np.int64)
    bins[bins == n_bins] = 0
    totals = np.bincount(bins, weights=series, minlength=n_bins)
    counts = np.bincount(bins, minlength=n_bins)
    counts[counts == 0] = 1
    return totals / counts
