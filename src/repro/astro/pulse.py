"""Pulse profile shapes for synthetic pulsar generation.

Pulsar pulses are well modelled by narrow peaked profiles; we provide the
three shapes most used in the literature: a Gaussian, a von Mises (the
periodic analogue, appropriate for folded profiles), and a Gaussian
convolved with a one-sided exponential scattering tail (thin-screen
scattering, prominent at low frequencies such as LOFAR's band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ValidationError

ProfileFunction = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PulseProfile:
    """A normalised pulse shape evaluated on phase in ``[0, 1)``.

    ``evaluate(phase)`` returns the profile amplitude with peak ~1.  The
    ``width`` is the characteristic width in phase units (e.g. FWHM/2.355
    for the Gaussian), retained for S/N normalisation.
    """

    name: str
    width: float
    _function: ProfileFunction
    #: Phase of the pulse peak in [0, 1); used by signal generation when it
    #: substitutes a smeared envelope for the exact shape.
    centre: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.width < 0.5:
            raise ValidationError(
                f"pulse width must be in (0, 0.5) phase units, got {self.width}"
            )

    def evaluate(self, phase: np.ndarray) -> np.ndarray:
        """Amplitude at each phase (phases outside [0,1) are wrapped)."""
        wrapped = np.mod(np.asarray(phase, dtype=np.float64), 1.0)
        return self._function(wrapped)

    def sample(self, n_bins: int) -> np.ndarray:
        """The profile evaluated on ``n_bins`` uniform phase bins."""
        if n_bins <= 0:
            raise ValidationError("n_bins must be positive")
        return self.evaluate(np.arange(n_bins, dtype=np.float64) / n_bins)


def _wrap_distance(phase: np.ndarray, centre: float) -> np.ndarray:
    """Shortest signed distance on the phase circle."""
    d = phase - centre
    return d - np.rint(d)


def gaussian_profile(width: float = 0.02, centre: float = 0.5) -> PulseProfile:
    """A Gaussian pulse of standard deviation ``width`` (phase units)."""

    def f(phase: np.ndarray) -> np.ndarray:
        d = _wrap_distance(phase, centre)
        return np.exp(-0.5 * (d / width) ** 2)

    return PulseProfile(name="gaussian", width=width, _function=f, centre=centre)


def von_mises_profile(width: float = 0.02, centre: float = 0.5) -> PulseProfile:
    """A von Mises pulse: the periodic analogue of the Gaussian.

    Concentration is chosen so that the small-width limit matches a Gaussian
    of standard deviation ``width``.
    """
    kappa = 1.0 / (2.0 * np.pi * width) ** 2

    def f(phase: np.ndarray) -> np.ndarray:
        angle = 2.0 * np.pi * (phase - centre)
        return np.exp(kappa * (np.cos(angle) - 1.0))

    return PulseProfile(name="von_mises", width=width, _function=f, centre=centre)


def scattered_profile(
    width: float = 0.01, tail: float = 0.05, centre: float = 0.3, n_grid: int = 4096
) -> PulseProfile:
    """A Gaussian convolved with a one-sided exponential scattering tail.

    ``tail`` is the exponential decay constant in phase units.  The
    convolution is evaluated once on a fine grid and interpolated, keeping
    ``evaluate`` cheap for large sample counts.
    """
    if not 0 < tail < 0.5:
        raise ValidationError(f"tail must be in (0, 0.5), got {tail}")
    grid = np.arange(n_grid, dtype=np.float64) / n_grid
    gauss = np.exp(-0.5 * (_wrap_distance(grid, centre) / width) ** 2)
    kernel = np.exp(-grid / tail)
    conv = np.real(np.fft.ifft(np.fft.fft(gauss) * np.fft.fft(kernel)))
    conv /= conv.max()

    def f(phase: np.ndarray) -> np.ndarray:
        return np.interp(phase, grid, conv, period=1.0)

    return PulseProfile(name="scattered", width=width, _function=f, centre=centre)
