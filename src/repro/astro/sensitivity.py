"""Search sensitivity: what a DM error or smearing costs in S/N.

Sec. II of the paper explains why the DM space cannot be pruned: "when the
DM is only slightly off, the source signal will be smeared, and the signal
strength will drop below the noise floor".  This module quantifies that
statement with the classical single-pulse response of Cordes & McLaughlin
(2003): a Gaussian pulse of width ``W`` observed with a DM error ``dDM``
across a band is attenuated by

    S(zeta) = sqrt(pi)/2 * erf(zeta)/zeta,
    zeta    = (delay span across the band at dDM) / (2 * W)

— unity at zero error, falling off once the misalignment rivals the pulse
width.  On top of that, matched filtering a smeared pulse of effective
width ``W_eff`` with the original width loses ``sqrt(W / W_eff)``.

These curves justify the DM steps :mod:`repro.astro.ddplan` chooses and
are reproduced as an extended experiment.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from repro.astro.dispersion import dispersion_smearing_seconds
from repro.astro.ddplan import band_delay_span_seconds
from repro.astro.observation import ObservationSetup
from repro.errors import ValidationError
from repro.utils.validation import require_positive


def dm_error_attenuation(
    setup: ObservationSetup,
    dm_error: float,
    pulse_width_seconds: float,
) -> float:
    """S/N fraction retained when dedispersing ``dm_error`` off the truth.

    The Cordes & McLaughlin (2003) single-pulse response; symmetric in the
    sign of the error.
    """
    require_positive(pulse_width_seconds, "pulse_width_seconds")
    span = band_delay_span_seconds(setup, abs(dm_error))
    zeta = span / (2.0 * pulse_width_seconds)
    if zeta == 0.0:
        return 1.0
    return float(np.sqrt(np.pi) / 2.0 * erf(zeta) / zeta)


def smearing_attenuation(
    intrinsic_width_seconds: float,
    smearing_seconds: float,
) -> float:
    """S/N fraction retained when smearing widens a matched pulse.

    The effective width is the quadrature sum; a boxcar matched to the
    wider pulse collects the same fluence over more noise samples, losing
    ``sqrt(W / W_eff)``.
    """
    require_positive(intrinsic_width_seconds, "intrinsic_width_seconds")
    if smearing_seconds < 0:
        raise ValidationError("smearing_seconds must be non-negative")
    effective = np.hypot(intrinsic_width_seconds, smearing_seconds)
    return float(np.sqrt(intrinsic_width_seconds / effective))


def step_sensitivity(
    setup: ObservationSetup,
    dm_step: float,
    pulse_width_seconds: float,
) -> float:
    """Worst-case S/N retention of a grid with step ``dm_step``.

    A source can sit half a step from the nearest trial; the returned
    fraction is the attenuation at that worst offset.  The DDplan
    tolerance translates directly: a 1.25 tolerance keeps this above ~0.9
    for pulses at the effective time resolution.
    """
    require_positive(dm_step, "dm_step")
    return dm_error_attenuation(setup, 0.5 * dm_step, pulse_width_seconds)


def sensitivity_curve(
    setup: ObservationSetup,
    dm_errors: np.ndarray,
    pulse_width_seconds: float,
    trial_dm: float = 0.0,
) -> np.ndarray:
    """Attenuation at each DM error, including intra-channel smearing.

    The total retained S/N combines the misalignment response with the
    channel-smearing loss at the trial DM — the curve that defines a
    survey's "sensitivity cone" in the DM-time plane.
    """
    dm_errors = np.asarray(dm_errors, dtype=np.float64)
    smear = dispersion_smearing_seconds(
        float(np.median(setup.channel_frequencies)),
        setup.channel_bandwidth,
        max(trial_dm, 0.0),
    )
    base = smearing_attenuation(pulse_width_seconds, smear)
    return np.asarray(
        [
            base * dm_error_attenuation(setup, float(e), pulse_width_seconds)
            for e in dm_errors
        ]
    )


def half_power_dm_error(
    setup: ObservationSetup,
    pulse_width_seconds: float,
) -> float:
    """The DM error at which the response drops to 50%.

    Solved from the Cordes-McLaughlin response: ``S(zeta) = 0.5`` at
    ``zeta ~= 1.75``; inverted through the band delay span.  This is
    the natural unit for DM-grid design — steps beyond twice this value
    leave blind spots between trials.
    """
    require_positive(pulse_width_seconds, "pulse_width_seconds")
    zeta_half = 1.7487  # solves sqrt(pi)/2 * erf(z)/z = 1/2
    span_per_dm = band_delay_span_seconds(setup, 1.0)
    if span_per_dm <= 0:
        raise ValidationError("setup has no dispersion span")
    return zeta_half * 2.0 * pulse_width_seconds / span_per_dm
