"""Radio-frequency interference: injection and mitigation.

Terrestrial interference is the bane of transient surveys: impulsive
broadband RFI arrives *undispersed* (it does not traverse the interstellar
medium), so it peaks at DM 0 and masquerades as a bright low-DM candidate;
narrowband RFI saturates individual channels.  This module provides

* injectors for both RFI classes (for robustness testing), and
* the two standard mitigations: per-channel masking by excess variance,
  and the *zero-DM filter* (Eatough et al. 2009) that subtracts the
  per-sample band average, annihilating undispersed signals while barely
  touching dispersed ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.deprecation import warn_once
from repro.utils.validation import require_non_negative, require_positive


def inject_broadband_rfi(
    data: np.ndarray,
    sample_indices: list[int] | np.ndarray,
    amplitude: float = 5.0,
    width: int = 2,
) -> np.ndarray:
    """Deprecated: use :class:`repro.astro.source.BroadbandRFISource`.

    Behaviour is unchanged; the first call warns once per process.
    """
    warn_once(
        "inject_broadband_rfi",
        "inject_broadband_rfi() is deprecated; use the unified "
        "SignalSource API instead, e.g. BroadbandRFISource(n_events=4)"
        ".add_to(data, setup, streams) (repro.astro.source)",
    )
    return _inject_broadband_rfi(
        data, sample_indices, amplitude=amplitude, width=width
    )


def _inject_broadband_rfi(
    data: np.ndarray,
    sample_indices: list[int] | np.ndarray,
    amplitude: float = 5.0,
    width: int = 2,
) -> np.ndarray:
    """Add undispersed impulsive RFI hitting all channels simultaneously."""
    if data.ndim != 2:
        raise ValidationError("data must be 2-D (channels, time)")
    require_positive(amplitude, "amplitude")
    if width < 1:
        raise ValidationError("width must be >= 1")
    for start in np.asarray(sample_indices, dtype=np.int64):
        if not 0 <= start < data.shape[1]:
            raise ValidationError(f"sample index {start} out of range")
        stop = min(int(start) + width, data.shape[1])
        data[:, int(start):stop] += np.float32(amplitude)
    return data


def inject_narrowband_rfi(
    data: np.ndarray,
    channel_indices: list[int] | np.ndarray,
    amplitude: float = 3.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Deprecated: use :class:`repro.astro.source.NarrowbandRFISource`.

    Behaviour is unchanged; the first call warns once per process.
    """
    warn_once(
        "inject_narrowband_rfi",
        "inject_narrowband_rfi() is deprecated; use the unified "
        "SignalSource API instead, e.g. NarrowbandRFISource(n_channels=2)"
        ".add_to(data, setup, streams) (repro.astro.source)",
    )
    return _inject_narrowband_rfi(
        data, channel_indices, amplitude=amplitude, rng=rng
    )


def _inject_narrowband_rfi(
    data: np.ndarray,
    channel_indices: list[int] | np.ndarray,
    amplitude: float = 3.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Add persistent noisy carriers to individual channels."""
    if data.ndim != 2:
        raise ValidationError("data must be 2-D (channels, time)")
    require_positive(amplitude, "amplitude")
    rng = rng or np.random.default_rng(0)
    for ch in np.asarray(channel_indices, dtype=np.int64):
        if not 0 <= ch < data.shape[0]:
            raise ValidationError(f"channel index {ch} out of range")
        data[int(ch)] += amplitude * (
            1.0 + rng.normal(0.0, 0.5, size=data.shape[1])
        ).astype(data.dtype)
    return data


@dataclass(frozen=True)
class ChannelMask:
    """Which channels were excised and why."""

    mask: np.ndarray  # bool, (channels,), True = keep
    variances: np.ndarray
    threshold: float

    @property
    def n_masked(self) -> int:
        """Number of excised channels."""
        return int(np.sum(~self.mask))


def mask_noisy_channels(
    data: np.ndarray, sigma_threshold: float = 5.0
) -> ChannelMask:
    """Excise channels whose variance is an outlier (narrowband RFI).

    Robust detection: a channel is masked when its variance exceeds the
    median by ``sigma_threshold`` MAD-sigmas.  Masked channels are zeroed
    in place (zero contributes nothing to a dedispersed sum).
    """
    if data.ndim != 2:
        raise ValidationError("data must be 2-D (channels, time)")
    require_non_negative(sigma_threshold, "sigma_threshold")
    variances = data.var(axis=1)
    median = float(np.median(variances))
    mad = float(np.median(np.abs(variances - median)))
    sigma = 1.4826 * mad if mad > 0 else float(variances.std()) or 1.0
    keep = variances <= median + sigma_threshold * sigma
    data[~keep] = 0.0
    return ChannelMask(
        mask=keep, variances=variances, threshold=sigma_threshold
    )


def zero_dm_filter(data: np.ndarray) -> np.ndarray:
    """Subtract the per-sample band mean (the zero-DM filter), in place.

    Undispersed (DM 0) signals appear identically in every channel, so
    removing the instantaneous band average annihilates them; a properly
    dispersed pulse occupies only ~one channel per sample and loses just
    1/channels of its amplitude.

    Note that the DM-0 dedispersed series of filtered data is identically
    zero by construction (it *is* the removed band average), so pipelines
    using this filter start their trial grid above zero — searching the
    null series would only amplify floating-point residue.
    """
    if data.ndim != 2:
        raise ValidationError("data must be 2-D (channels, time)")
    band_mean = data.mean(axis=0, keepdims=True)
    data -= band_mean.astype(data.dtype)
    return data
