"""Periodicity search: FFT power spectra with harmonic summing.

Dedispersion is "a fundamental step in searching the sky for radio
pulsars" (paper, abstract) — the step *after* it, for periodic sources, is
a Fourier-domain search of every dedispersed time series: detrend, FFT,
normalise the power spectrum, sum harmonics (pulsar pulses are narrow, so
their power spreads over many harmonics), and threshold.

This module implements that standard chain (Lorimer & Kramer ch. 6) so
the repository covers the survey pipeline end to end: channelised data ->
dedispersion -> single-pulse *and* periodicity detection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import require_positive, require_positive_int


def power_spectrum(series: np.ndarray) -> np.ndarray:
    """Normalised power spectrum of a (detrended) time series.

    Mean-subtracted rFFT power, scaled so that white-noise bins follow a
    unit-mean exponential distribution — the normalisation under which
    "sigma" thresholds have their usual meaning.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ValidationError("series must be 1-D")
    if series.size < 4:
        raise ValidationError("series too short for a spectrum")
    centred = series - series.mean()
    spectrum = np.abs(np.fft.rfft(centred)) ** 2
    spectrum = spectrum[1:]  # drop DC
    # Median-normalise: robust to bright candidates (median of a unit-mean
    # exponential is ln 2).
    median = float(np.median(spectrum))
    if median <= 0:
        return np.zeros_like(spectrum)
    return spectrum * (np.log(2.0) / median)


def harmonic_sum(spectrum: np.ndarray, n_harmonics: int) -> np.ndarray:
    """Sum the first ``n_harmonics`` harmonics onto each fundamental.

    ``result[k] = sum_h spectrum[h*(k+1) - 1]`` for the harmonics that fit
    inside the spectrum.  Bins whose higher harmonics fall off the end keep
    their *partial* sums (they are simply weaker candidates); rescaling
    them would inflate their variance and fabricate significance, so the
    search restricts itself to fully-summed bins instead.
    """
    require_positive_int(n_harmonics, "n_harmonics")
    spectrum = np.asarray(spectrum, dtype=np.float64)
    n = spectrum.size
    out = np.zeros(n, dtype=np.float64)
    idx = np.arange(n)
    for h in range(1, n_harmonics + 1):
        harmonic_idx = (idx + 1) * h - 1
        valid = harmonic_idx < n
        out[valid] += spectrum[harmonic_idx[valid]]
    return out


def fully_summed_bins(n_bins: int, n_harmonics: int) -> int:
    """Number of leading bins whose ``n_harmonics`` harmonics all fit."""
    require_positive_int(n_harmonics, "n_harmonics")
    return n_bins // n_harmonics


def spectrum_sigma(summed: np.ndarray, n_harmonics: int) -> np.ndarray:
    """Gaussian-equivalent significance of harmonic-summed powers.

    A sum of ``n`` unit-mean exponential bins has mean ``n`` and variance
    ``n``; the central-limit approximation gives
    ``sigma = (P - n) / sqrt(n)``, adequate for ranking candidates.
    """
    require_positive_int(n_harmonics, "n_harmonics")
    return (np.asarray(summed) - n_harmonics) / np.sqrt(n_harmonics)


def suggested_sigma_threshold(
    n_bins: int,
    n_trials: int,
    false_alarm: float = 0.01,
) -> float:
    """Detection threshold accounting for the number of trials searched.

    The look-elsewhere effect: the maximum of ``N = n_bins * n_trials``
    unit-mean exponential powers exceeds ``ln(N / p)`` with probability
    ~``p``, so a fixed few-sigma cut drowns in false alarms for large
    searches.  The single-harmonic exponential tail is the heaviest, so
    its bound is used for every fold (conservative for summed folds).
    """
    require_positive_int(n_bins, "n_bins")
    require_positive_int(n_trials, "n_trials")
    if not 0.0 < false_alarm < 1.0:
        raise ValidationError("false_alarm must be in (0, 1)")
    threshold_power = np.log(n_bins * n_trials / false_alarm)
    return float(threshold_power - 1.0)  # sigma for n_harmonics = 1


@dataclass(frozen=True)
class PeriodicityCandidate:
    """One candidate from a periodicity search."""

    dm_index: int
    dm: float
    frequency_hz: float
    period_seconds: float
    n_harmonics: int
    power: float
    sigma: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P={self.period_seconds * 1e3:.2f} ms at DM {self.dm:.2f} "
            f"({self.sigma:.1f} sigma, {self.n_harmonics} harmonics)"
        )


def search_periodicity(
    dedispersed: np.ndarray,
    dms: np.ndarray,
    samples_per_second: int,
    max_harmonics: int = 8,
    min_frequency_hz: float = 0.5,
    sigma_threshold: float | None = None,
) -> list[PeriodicityCandidate]:
    """Fourier-search every DM trial; return candidates above threshold.

    ``dedispersed`` has shape ``(n_dms, samples)``.  Harmonic folds of 1,
    2, 4, ... ``max_harmonics`` are searched; each trial contributes at
    most one candidate (its best fold), and the list is sorted by sigma,
    descending.  ``sigma_threshold=None`` (the default) derives a
    trials-aware threshold from :func:`suggested_sigma_threshold`.
    """
    dedispersed = np.asarray(dedispersed)
    if dedispersed.ndim != 2:
        raise ValidationError("dedispersed must be (n_dms, samples)")
    if dedispersed.shape[0] != len(dms):
        raise ValidationError("dms length must match dedispersed rows")
    require_positive_int(samples_per_second, "samples_per_second")
    require_positive(min_frequency_hz, "min_frequency_hz")

    n = dedispersed.shape[1]
    freqs = np.fft.rfftfreq(n, d=1.0 / samples_per_second)[1:]
    min_bin = int(np.searchsorted(freqs, min_frequency_hz))
    if sigma_threshold is None:
        sigma_threshold = suggested_sigma_threshold(
            max(freqs.size, 1), dedispersed.shape[0]
        )

    candidates: list[PeriodicityCandidate] = []
    folds = [h for h in (1, 2, 4, 8, 16) if h <= max_harmonics]
    for i in range(dedispersed.shape[0]):
        spectrum = power_spectrum(dedispersed[i])
        best: PeriodicityCandidate | None = None
        for n_harm in folds:
            summed = harmonic_sum(spectrum, n_harm)
            sigmas = spectrum_sigma(summed, n_harm)
            sigmas[:min_bin] = -np.inf  # red-noise region
            sigmas[fully_summed_bins(spectrum.size, n_harm):] = -np.inf
            k = int(np.argmax(sigmas))
            if not np.isfinite(sigmas[k]):
                continue
            if best is None or sigmas[k] > best.sigma:
                best = PeriodicityCandidate(
                    dm_index=i,
                    dm=float(dms[i]),
                    frequency_hz=float(freqs[k]),
                    period_seconds=float(1.0 / freqs[k]),
                    n_harmonics=n_harm,
                    power=float(summed[k]),
                    sigma=float(sigmas[k]),
                )
        if best is not None and best.sigma >= sigma_threshold:
            candidates.append(best)
    candidates.sort(key=lambda c: -c.sigma)
    return candidates
