"""Folding-based candidate confirmation: the (phase, DM) diagnostic.

A periodicity candidate from the Fourier search is confirmed the way
pulsar astronomers do it: fold the dedispersed series at the candidate
period across the neighbouring DM trials.  A real pulsar produces a
folded profile whose significance peaks at the true DM and degrades
symmetrically away from it (the vertical signature in a prepfold plot);
interference and noise flukes do not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.snr import folded_profile
from repro.errors import ValidationError
from repro.utils.validation import require_positive, require_positive_int


def folded_snr(
    series: np.ndarray,
    samples_per_second: int,
    period_seconds: float,
    n_bins: int = 32,
) -> float:
    """Significance of a folded profile.

    Folds the series and measures the peak of the mean-subtracted profile
    in units of the off-pulse scatter — the standard folded S/N.
    """
    profile = folded_profile(
        series, samples_per_second, period_seconds, n_bins=n_bins
    )
    order = np.sort(profile)
    # Off-pulse statistics from the lower three quarters of bins.
    off = order[: max(3 * n_bins // 4, 2)]
    mean = float(off.mean())
    sigma = float(off.std())
    if sigma == 0.0:
        return 0.0
    return float((profile.max() - mean) / sigma)


@dataclass(frozen=True)
class FoldVerdict:
    """Outcome of folding a candidate across DM trials."""

    dm_index: int
    dm: float
    period_seconds: float
    snr_at_candidate: float
    snr_per_trial: np.ndarray
    confirmed: bool
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "CONFIRMED" if self.confirmed else "rejected"
        return (
            f"{status}: P={self.period_seconds * 1e3:.1f} ms at "
            f"DM {self.dm:.2f} (folded S/N {self.snr_at_candidate:.1f}; "
            f"{self.reason})"
        )


def fold_candidate(
    dedispersed: np.ndarray,
    dms: np.ndarray,
    samples_per_second: int,
    period_seconds: float,
    dm_index: int,
    n_bins: int = 32,
    min_snr: float = 6.0,
    peak_margin: float = 1.1,
) -> FoldVerdict:
    """Fold a candidate across all DM trials and judge it.

    Confirmation requires (a) the folded S/N at the candidate trial to
    clear ``min_snr`` and (b) the candidate trial to be within
    ``peak_margin`` of the best trial — a pulsar's fold peaks at (or next
    to) its own DM, while broadband interference peaks at the lowest
    trial and noise flukes peak anywhere.
    """
    dedispersed = np.asarray(dedispersed)
    if dedispersed.ndim != 2:
        raise ValidationError("dedispersed must be (n_dms, samples)")
    if dedispersed.shape[0] != len(dms):
        raise ValidationError("dms length must match dedispersed rows")
    require_positive_int(samples_per_second, "samples_per_second")
    require_positive(period_seconds, "period_seconds")
    if not 0 <= dm_index < dedispersed.shape[0]:
        raise ValidationError(f"dm_index {dm_index} out of range")

    per_trial = np.asarray(
        [
            folded_snr(
                dedispersed[i], samples_per_second, period_seconds, n_bins
            )
            for i in range(dedispersed.shape[0])
        ]
    )
    snr_here = float(per_trial[dm_index])
    best_index = int(np.argmax(per_trial))
    best = float(per_trial[best_index])

    if snr_here < min_snr:
        confirmed, reason = False, f"folded S/N {snr_here:.1f} < {min_snr}"
    elif best > peak_margin * snr_here and abs(best_index - dm_index) > 1:
        confirmed, reason = False, (
            f"fold peaks at trial {best_index} (DM {dms[best_index]:.2f}), "
            "not at the candidate"
        )
    else:
        confirmed, reason = True, "fold peaks at the candidate DM"
    return FoldVerdict(
        dm_index=dm_index,
        dm=float(dms[dm_index]),
        period_seconds=period_seconds,
        snr_at_candidate=snr_here,
        snr_per_trial=per_trial,
        confirmed=confirmed,
        reason=reason,
    )
