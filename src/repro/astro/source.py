"""The unified seeded signal-generation API: :class:`SignalSource`.

The injection surface of :mod:`repro.astro` grew organically — free
functions with incompatible spellings (``generate_observation`` takes a
bare numpy ``Generator``, ``inject_pulse`` mutates in place and returns
nothing machine-checkable, the RFI injectors want explicit index lists)
and none of them reports *what* it injected.  That made scenario-style
testing impossible: the caller had to hand-maintain ground truth beside
the data it asked for.

:class:`SignalSource` is the one replacement contract::

    data, truth = source.generate(setup, n_samples, streams)

* every source draws randomness **only** from named
  :class:`~repro.utils.rng.RandomStreams` children, so a fixed
  ``(seed, setup, n_samples)`` triple is byte-deterministic;
* every source returns a :class:`SignalTruth` describing each injected
  component (kind, DM, amplitude, event positions) — the machine-checkable
  ground truth the :mod:`repro.scenarios` matrix scores against;
* sources compose: :class:`CompositeSource` sums any number of children
  into one observation and merges their truths.

The legacy free functions remain as warn-once deprecation shims in their
home modules (:mod:`repro.astro.signal_gen`, :mod:`repro.astro.rfi`);
their behaviour is unchanged, byte for byte.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import delay_table, max_delay_samples
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.astro.signal_gen import SyntheticPulsar, _inject_pulse
from repro.astro.rfi import _inject_broadband_rfi, _inject_narrowband_rfi
from repro.astro.telescope import StreamChunk
from repro.errors import ValidationError
from repro.utils.rng import RandomStreams
from repro.utils.validation import (
    require_non_negative,
    require_positive,
    require_positive_int,
)


# ----------------------------------------------------------------------
# Ground truth
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SignalComponent:
    """One injected ingredient of an observation, machine-checkable.

    ``kind`` names the component class (``noise``, ``pulsar``, ``burst``,
    ``burst_train``, ``rfi_broadband``, ``rfi_narrowband``); the optional
    fields record whatever that kind pins down — the true DM and
    amplitude of an astrophysical signal, the reference-frame sample
    positions of impulsive events, the carrier channels of narrowband
    RFI.
    """

    kind: str
    dm: float | None = None
    amplitude: float | None = None
    period_seconds: float | None = None
    time_samples: tuple[int, ...] = ()
    channels: tuple[int, ...] = ()
    detail: str = ""

    def as_dict(self) -> dict:
        """JSON-ready representation (``None`` fields omitted)."""
        doc: dict = {"kind": self.kind}
        if self.dm is not None:
            doc["dm"] = float(self.dm)
        if self.amplitude is not None:
            doc["amplitude"] = float(self.amplitude)
        if self.period_seconds is not None:
            doc["period_seconds"] = float(self.period_seconds)
        if self.time_samples:
            doc["time_samples"] = [int(t) for t in self.time_samples]
        if self.channels:
            doc["channels"] = [int(c) for c in self.channels]
        if self.detail:
            doc["detail"] = self.detail
        return doc


@dataclass(frozen=True)
class SignalTruth:
    """Everything a :class:`SignalSource` injected, component by component."""

    components: tuple[SignalComponent, ...] = ()

    def merge(self, other: "SignalTruth") -> "SignalTruth":
        """Union of two truths (composition order preserved)."""
        return SignalTruth(components=self.components + other.components)

    @property
    def dms(self) -> tuple[float, ...]:
        """True DMs of the dispersed components, in composition order."""
        return tuple(
            c.dm for c in self.components
            if c.dm is not None and c.kind not in ("noise",)
        )

    def of_kind(self, kind: str) -> tuple[SignalComponent, ...]:
        """All components of one ``kind``."""
        return tuple(c for c in self.components if c.kind == kind)

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {"components": [c.as_dict() for c in self.components]}


# ----------------------------------------------------------------------
# The protocol
# ----------------------------------------------------------------------
class SignalSource(abc.ABC):
    """One seeded producer of channelised signal plus its ground truth.

    Subclasses implement :meth:`add_to` (inject into an existing matrix,
    returning the truth); :meth:`generate` is the blessed entrypoint that
    allocates a zeroed ``(channels, n_samples)`` float32 matrix and
    delegates.  All randomness must come from named children of the
    supplied :class:`~repro.utils.rng.RandomStreams` — never module-level
    generators — so generation is byte-deterministic and
    order-independent across compositions.
    """

    def generate(
        self,
        setup: ObservationSetup,
        n_samples: int,
        streams: RandomStreams,
    ) -> tuple[np.ndarray, SignalTruth]:
        """Produce ``(data, truth)`` for ``n_samples`` of ``setup`` data."""
        require_positive_int(n_samples, "n_samples")
        data = np.zeros((setup.channels, n_samples), dtype=np.float32)
        truth = self.add_to(data, setup, streams)
        return data, truth

    @abc.abstractmethod
    def add_to(
        self,
        data: np.ndarray,
        setup: ObservationSetup,
        streams: RandomStreams,
    ) -> SignalTruth:
        """Inject this source into ``data`` in place; returns its truth."""


# ----------------------------------------------------------------------
# Concrete sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoiseSource(SignalSource):
    """Gaussian radiometer noise, drawn from the ``source.<stream>`` child."""

    sigma: float = 1.0
    stream: str = "noise"

    def __post_init__(self) -> None:
        require_non_negative(self.sigma, "sigma")

    def add_to(self, data, setup, streams) -> SignalTruth:
        if self.sigma > 0:
            rng = streams.numpy(f"source.{self.stream}")
            data += rng.normal(
                0.0, self.sigma, size=data.shape
            ).astype(np.float32)
        return SignalTruth(
            (SignalComponent(kind="noise", amplitude=self.sigma),)
        )


@dataclass(frozen=True)
class PulsarSource(SignalSource):
    """A periodic dispersed pulsar (wraps the classic injection physics)."""

    pulsar: SyntheticPulsar
    smear: bool = True

    def add_to(self, data, setup, streams) -> SignalTruth:
        _inject_pulse(data, setup, self.pulsar, smear=self.smear)
        return SignalTruth((
            SignalComponent(
                kind="pulsar",
                dm=self.pulsar.dm,
                amplitude=self.pulsar.amplitude,
                period_seconds=self.pulsar.period_seconds,
            ),
        ))


def _dispersed_burst(
    data: np.ndarray,
    shifts: np.ndarray,
    t0: float,
    width_samples: float,
    amplitude: float,
) -> None:
    """Add one dispersed Gaussian burst (reference-frame time ``t0``)."""
    t = np.arange(data.shape[1], dtype=np.float64)
    d = t[None, :] - (t0 + shifts[:, None])
    data += (
        amplitude * np.exp(-0.5 * (d / width_samples) ** 2)
    ).astype(np.float32)


@dataclass(frozen=True)
class BurstSource(SignalSource):
    """One dispersed Gaussian burst (an FRB-like single event).

    The burst peaks at ``time_seconds`` in the highest-frequency
    (reference) channel and arrives later in lower channels according to
    the cold-plasma delay of its ``dm`` — exactly the integer delay
    table the kernel undoes, so dedispersion at the matching trial
    realigns it sample-exactly.
    """

    dm: float
    time_seconds: float
    width_seconds: float
    amplitude: float = 2.0

    def __post_init__(self) -> None:
        require_non_negative(self.dm, "dm")
        require_non_negative(self.time_seconds, "time_seconds")
        require_positive(self.width_seconds, "width_seconds")
        require_positive(self.amplitude, "amplitude")

    def add_to(self, data, setup, streams) -> SignalTruth:
        shifts = delay_table(setup, np.asarray([self.dm]))[0]
        t0 = self.time_seconds * setup.samples_per_second
        width = max(self.width_seconds * setup.samples_per_second, 0.5)
        _dispersed_burst(data, shifts, t0, width, self.amplitude)
        return SignalTruth((
            SignalComponent(
                kind="burst",
                dm=self.dm,
                amplitude=self.amplitude,
                time_samples=(int(round(t0)),),
            ),
        ))


@dataclass(frozen=True)
class BurstTrainSource(SignalSource):
    """A train of dispersed bursts with per-pulse amplitude modulation.

    This is the single-pulse view of a pulsar: one burst per rotation,
    each independently modulated.  Three knobs cover the classic
    phenomenology:

    * ``modulation_depth`` — scintillation: per-pulse amplitude factor
      drawn uniformly from ``[1 - depth, 1 + depth]``;
    * ``null_probability`` — nulling: a pulse vanishes entirely with
      this probability (pulse 0 is always emitted so the train is never
      empty);
    * ``giant_probability`` / ``giant_factor`` — giant pulses: with this
      probability a pulse is boosted by ``giant_factor`` (the
      Crab-pulsar regime where the *mean* pulse is undetectable and only
      giants cross the threshold).

    Per-pulse draws use order-independent coordinates
    (``streams.uniform(...)``), so adding unrelated draws elsewhere
    never moves a pulse's fate.
    """

    dm: float
    period_seconds: float
    width_seconds: float
    amplitude: float = 2.0
    start_seconds: float = 0.25
    modulation_depth: float = 0.0
    null_probability: float = 0.0
    giant_probability: float = 0.0
    giant_factor: float = 5.0
    stream: str = "bursts"

    def __post_init__(self) -> None:
        require_non_negative(self.dm, "dm")
        require_positive(self.period_seconds, "period_seconds")
        require_positive(self.width_seconds, "width_seconds")
        require_positive(self.amplitude, "amplitude")
        require_non_negative(self.start_seconds, "start_seconds")
        if not 0.0 <= self.modulation_depth <= 1.0:
            raise ValidationError("modulation_depth must be in [0, 1]")
        if not 0.0 <= self.null_probability < 1.0:
            raise ValidationError("null_probability must be in [0, 1)")
        if not 0.0 <= self.giant_probability <= 1.0:
            raise ValidationError("giant_probability must be in [0, 1]")
        require_positive(self.giant_factor, "giant_factor")

    def add_to(self, data, setup, streams) -> SignalTruth:
        shifts = delay_table(setup, np.asarray([self.dm]))[0]
        sps = setup.samples_per_second
        width = max(self.width_seconds * sps, 0.5)
        period_samples = self.period_seconds * sps
        emitted: list[int] = []
        t0 = self.start_seconds * sps
        k = 0
        while t0 < data.shape[1]:
            nulled = (
                k > 0
                and self.null_probability > 0.0
                and streams.uniform("source", self.stream, "null", k)
                < self.null_probability
            )
            if not nulled:
                amp = self.amplitude
                if self.modulation_depth > 0.0:
                    u = streams.uniform("source", self.stream, "scint", k)
                    amp *= 1.0 - self.modulation_depth + 2.0 * self.modulation_depth * u
                if (
                    self.giant_probability > 0.0
                    and streams.uniform("source", self.stream, "giant", k)
                    < self.giant_probability
                ):
                    amp *= self.giant_factor
                _dispersed_burst(data, shifts, t0, width, amp)
                emitted.append(int(round(t0)))
            t0 += period_samples
            k += 1
        return SignalTruth((
            SignalComponent(
                kind="burst_train",
                dm=self.dm,
                amplitude=self.amplitude,
                period_seconds=self.period_seconds,
                time_samples=tuple(emitted),
            ),
        ))


@dataclass(frozen=True)
class BroadbandRFISource(SignalSource):
    """Impulsive undispersed RFI at seeded random sample positions."""

    n_events: int = 4
    amplitude: float = 6.0
    width: int = 2
    stream: str = "rfi_broadband"

    def __post_init__(self) -> None:
        require_positive_int(self.n_events, "n_events")
        require_positive(self.amplitude, "amplitude")
        require_positive_int(self.width, "width")

    def add_to(self, data, setup, streams) -> SignalTruth:
        rng = streams.numpy(f"source.{self.stream}")
        span = max(data.shape[1] - self.width, 1)
        positions = np.unique(rng.integers(0, span, size=self.n_events))
        _inject_broadband_rfi(
            data, positions, amplitude=self.amplitude, width=self.width
        )
        return SignalTruth((
            SignalComponent(
                kind="rfi_broadband",
                dm=0.0,
                amplitude=self.amplitude,
                time_samples=tuple(int(p) for p in positions),
            ),
        ))


@dataclass(frozen=True)
class NarrowbandRFISource(SignalSource):
    """Persistent noisy carriers in seeded random channels."""

    n_channels: int = 2
    amplitude: float = 4.0
    stream: str = "rfi_narrowband"

    def __post_init__(self) -> None:
        require_positive_int(self.n_channels, "n_channels")
        require_positive(self.amplitude, "amplitude")

    def add_to(self, data, setup, streams) -> SignalTruth:
        rng = streams.numpy(f"source.{self.stream}")
        n = min(self.n_channels, setup.channels)
        channels = np.sort(
            rng.choice(setup.channels, size=n, replace=False)
        )
        _inject_narrowband_rfi(
            data, channels, amplitude=self.amplitude, rng=rng
        )
        return SignalTruth((
            SignalComponent(
                kind="rfi_narrowband",
                amplitude=self.amplitude,
                channels=tuple(int(c) for c in channels),
            ),
        ))


@dataclass(frozen=True)
class ScaledSource(SignalSource):
    """A child source attenuated by a constant factor.

    The multi-beam realization of :mod:`repro.survey` uses this for beam
    response: the same astrophysical source — same seeded draws, same
    event times — appears in adjacent beams at reduced amplitude.  The
    child is generated into a scratch buffer and added scaled, so its
    stream draws are identical to the unscaled source's; the reported
    truth carries the *scaled* amplitudes.
    """

    source: SignalSource
    factor: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.factor, "factor")

    def add_to(self, data, setup, streams) -> SignalTruth:
        buffer = np.zeros_like(data)
        truth = self.source.add_to(buffer, setup, streams)
        data += np.float32(self.factor) * buffer
        return SignalTruth(tuple(
            component
            if component.amplitude is None
            else SignalComponent(
                kind=component.kind,
                dm=component.dm,
                amplitude=component.amplitude * self.factor,
                period_seconds=component.period_seconds,
                time_samples=component.time_samples,
                channels=component.channels,
                detail=component.detail,
            )
            for component in truth.components
        ))


@dataclass(frozen=True)
class CompositeSource(SignalSource):
    """The sum of child sources; truths merge in composition order."""

    sources: tuple[SignalSource, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "sources", tuple(self.sources))
        if not self.sources:
            raise ValidationError("a CompositeSource needs at least one child")

    def add_to(self, data, setup, streams) -> SignalTruth:
        truth = SignalTruth()
        for child in self.sources:
            truth = truth.merge(child.add_to(data, setup, streams))
        return truth


# ----------------------------------------------------------------------
# Chunked streaming on top of a source
# ----------------------------------------------------------------------
def stream_chunks(
    source: SignalSource,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_chunks: int,
    streams: RandomStreams,
    chunk_samples: int | None = None,
    beam_index: int = 0,
) -> tuple[tuple[StreamChunk, ...], SignalTruth]:
    """Cut one long source-generated observation into overlapped chunks.

    Mirrors :meth:`repro.astro.telescope.Telescope.stream`: a single
    contiguous observation (``n_chunks * chunk_samples`` output samples
    plus the maximum dispersion delay at ``grid.last``) is generated once
    and sliced, so signals spanning chunk boundaries are reproduced
    consistently and the overlap region lets every chunk be dedispersed
    at the highest trial DM without future data.
    """
    require_positive_int(n_chunks, "n_chunks")
    samples = (
        setup.samples_per_batch if chunk_samples is None else chunk_samples
    )
    require_positive_int(samples, "chunk_samples")
    overlap = max_delay_samples(setup, grid.last)
    total = n_chunks * samples + overlap
    data, truth = source.generate(setup, total, streams)
    chunks = tuple(
        StreamChunk(
            beam_index=beam_index,
            sequence=i,
            data=data[:, i * samples:(i + 1) * samples + overlap],
            samples=samples,
            overlap=overlap,
        )
        for i in range(n_chunks)
    )
    return chunks, truth


__all__ = [
    "SignalComponent",
    "SignalTruth",
    "SignalSource",
    "NoiseSource",
    "PulsarSource",
    "BurstSource",
    "BurstTrainSource",
    "BroadbandRFISource",
    "NarrowbandRFISource",
    "ScaledSource",
    "CompositeSource",
    "stream_chunks",
]
