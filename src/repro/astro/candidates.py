"""Candidate extraction and sifting.

A bright pulse is detected not only at its true DM but — weaker and wider —
in a cone of neighbouring trials and offsets (the "bow tie" of the DM-time
plane).  Reporting every super-threshold (trial, offset) would swamp any
follow-up, so pipelines *sift*: cluster detections that belong to the same
physical event and keep each cluster's strongest member.

The implementation is the standard greedy non-maximum suppression used by
single-pulse sifters (e.g. PRESTO's ``single_pulse_search`` grouping):
process detections in decreasing S/N; each one either joins an existing
cluster (close in DM *and* overlapping in time) or seeds a new cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.snr import best_boxcar_snr
from repro.errors import ValidationError
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class Candidate:
    """One super-threshold detection in the DM-time plane.

    ``beam`` records which telescope beam the detection came from
    (default 0, the single-beam case), so multi-beam consumers — the
    cross-beam coincidence stage of :mod:`repro.survey`, notably — never
    re-derive provenance downstream.
    """

    dm_index: int
    dm: float
    snr: float
    time_sample: int
    width: int
    beam: int = 0

    def overlaps_in_time(self, other: "Candidate", slack: int = 0) -> bool:
        """Whether the two boxcar extents intersect (within ``slack``)."""
        a_lo, a_hi = self.time_sample, self.time_sample + self.width
        b_lo, b_hi = other.time_sample, other.time_sample + other.width
        return a_lo <= b_hi + slack and b_lo <= a_hi + slack


@dataclass(frozen=True)
class SiftedCandidate:
    """A cluster of detections reduced to its strongest member."""

    best: Candidate
    members: tuple[Candidate, ...]

    @property
    def n_members(self) -> int:
        """Cluster size (how many raw detections merged)."""
        return len(self.members)

    @property
    def dm_extent(self) -> float:
        """DM range the cluster spans — wide extents suggest RFI."""
        dms = [member.dm for member in self.members]
        return max(dms) - min(dms)


def find_candidates(
    dedispersed: np.ndarray,
    dms: np.ndarray,
    snr_threshold: float = 6.0,
    max_width: int | None = None,
) -> list[Candidate]:
    """Collect every trial's best detection above the threshold.

    One detection per trial (its best boxcar match) keeps the raw list
    linear in the number of trials; a bright event still yields many
    entries — one per trial in its bow tie — which sifting then merges.
    """
    dedispersed = np.asarray(dedispersed)
    if dedispersed.ndim != 2:
        raise ValidationError("dedispersed must be (n_dms, samples)")
    if dedispersed.shape[0] != len(dms):
        raise ValidationError("dms length must match dedispersed rows")
    require_positive(snr_threshold, "snr_threshold")

    found: list[Candidate] = []
    for i in range(dedispersed.shape[0]):
        snr, width, offset = best_boxcar_snr(dedispersed[i], max_width)
        if snr >= snr_threshold:
            found.append(
                Candidate(
                    dm_index=i,
                    dm=float(dms[i]),
                    snr=float(snr),
                    time_sample=int(offset),
                    width=int(width),
                )
            )
    return found


def sift(
    candidates: list[Candidate],
    dm_radius: float = 2.0,
    time_slack: int = 8,
) -> list[SiftedCandidate]:
    """Cluster raw detections into physical events.

    ``dm_radius`` is the DM distance (pc/cm^3) within which detections are
    considered the same event; ``time_slack`` the allowed gap (samples)
    between their boxcar extents.  Candidates from different beams never
    merge — a per-beam cluster is the unit the cross-beam coincidence
    stage consumes.  Returns clusters sorted by their best member's S/N,
    descending.
    """
    require_non_negative(dm_radius, "dm_radius")
    require_non_negative(time_slack, "time_slack")
    ordered = sorted(candidates, key=lambda c: -c.snr)
    clusters: list[list[Candidate]] = []
    for candidate in ordered:
        for cluster in clusters:
            anchor = cluster[0]  # the strongest member seeds the cluster
            if (
                candidate.beam == anchor.beam
                and abs(candidate.dm - anchor.dm) <= dm_radius
                and candidate.overlaps_in_time(anchor, slack=time_slack)
            ):
                cluster.append(candidate)
                break
        else:
            clusters.append([candidate])
    return [
        SiftedCandidate(best=cluster[0], members=tuple(cluster))
        for cluster in clusters
    ]


def search_and_sift(
    dedispersed: np.ndarray,
    dms: np.ndarray,
    snr_threshold: float = 6.0,
    dm_radius: float = 2.0,
    time_slack: int = 8,
) -> list[SiftedCandidate]:
    """Convenience: :func:`find_candidates` then :func:`sift`."""
    return sift(
        find_candidates(dedispersed, dms, snr_threshold),
        dm_radius=dm_radius,
        time_slack=time_slack,
    )
