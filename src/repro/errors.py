"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing configuration problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument or dataclass field failed validation."""


class ConfigurationError(ReproError):
    """A kernel configuration is not meaningful for a device/setup/instance.

    "Meaningful" follows the paper's Sec. IV-A definition: a configuration is
    meaningful if it fulfils all constraints posed by a specific platform,
    observational setup, and input instance.
    """


class DeviceError(ReproError):
    """A device specification is inconsistent or a device limit is violated."""


class TuningError(ReproError):
    """The auto-tuner could not produce a result (e.g. empty search space)."""


class PipelineError(ReproError):
    """A streaming/real-time pipeline was driven with inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was asked for an unknown or failed experiment."""


class SchedulerError(ReproError):
    """The sharded execution engine could not run a survey to completion."""


class ShardError(SchedulerError):
    """A work unit is invalid, unplaceable, or exhausted its retry budget."""


class LedgerError(SchedulerError):
    """A run ledger document is malformed or inconsistent with its run."""


class SchemaVersionError(ValidationError, LedgerError):
    """A persisted document carries a schema version we cannot read.

    Raised when a sweep store or run ledger file declares a *newer*
    schema than this build supports — typically a file written by a
    newer version of the library.  Derives from both
    :class:`ValidationError` and :class:`LedgerError` so existing
    handlers of either hierarchy keep working; the CLI surfaces it as a
    clean one-line error instead of a traceback, and caches must not
    treat it as corruption (the file is fine, we are just old).
    """
