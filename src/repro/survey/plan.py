"""Survey plans: everything one multi-beam survey run is configured by.

A :class:`SurveyPlan` is a pure value: which scenario (or explicit
per-beam sources) to observe, on which benchmark column
(:data:`repro.scenarios.SCENARIO_SETUPS`), with how many beams, which
DM range, which seed, and how the beam-correlated realization and
cross-beam coincidence behave.  Its :meth:`identity` dict is what the
survey ledger pins resumability against: resuming with a different plan
is refused, not silently mixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.source import SignalSource
from repro.errors import ValidationError
from repro.scenarios.regression import ScenarioSetup, setup_by_key
from repro.sched.faults import FaultProfile
from repro.survey.coincidence import CoincidencePolicy
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class SurveyPlan:
    """Configuration of one multi-beam survey run.

    ``scenario`` names a catalogue scenario whose source composition is
    decomposed into beam-correlated per-beam observations (signal into a
    localized neighbourhood around the centre beam, RFI identically into
    every beam, noise independent per beam).  Alternatively
    ``beam_sources`` supplies one explicit
    :class:`~repro.astro.source.SignalSource` per beam, realized
    independently — the escape hatch for hand-built observations.

    ``setup`` keys one column of
    :data:`~repro.scenarios.SCENARIO_SETUPS`; ``n_dms`` optionally
    overrides the column's trial count (same first/step), giving the
    benchmark its beams × n_dms scaling axis.  ``signal_radius`` sizes
    the beam neighbourhood carrying the astrophysical signal (centre ±
    radius) and ``adjacent_attenuation`` the per-beam-step amplitude
    falloff inside it.  ``faults`` drives the fleet-dispatch stage's
    fault injection (crashes / stragglers / transients on the simulated
    accelerator fleet).
    """

    scenario: str = "giant_pulse_train"
    setup: str = "low"
    n_beams: int = 8
    n_dms: int | None = None
    seed: int = 0
    backend: str | None = None
    n_chunks: int | None = None
    signal_radius: int = 1
    adjacent_attenuation: float = 0.7
    beam_sources: tuple[SignalSource, ...] = ()
    coincidence: CoincidencePolicy = field(default_factory=CoincidencePolicy)
    faults: FaultProfile = field(default_factory=FaultProfile.none)
    fleet_units: int = 3

    def __post_init__(self) -> None:
        require_positive_int(self.n_beams, "n_beams")
        require_positive_int(self.fleet_units, "fleet_units")
        if self.signal_radius < 0:
            raise ValidationError("signal_radius must be non-negative")
        if not 0.0 < self.adjacent_attenuation <= 1.0:
            raise ValidationError(
                "adjacent_attenuation must be in (0, 1]"
            )
        if self.n_dms is not None:
            require_positive_int(self.n_dms, "n_dms")
        if self.n_chunks is not None:
            require_positive_int(self.n_chunks, "n_chunks")
        object.__setattr__(
            self, "beam_sources", tuple(self.beam_sources)
        )
        if self.beam_sources and len(self.beam_sources) != self.n_beams:
            raise ValidationError(
                f"beam_sources supplies {len(self.beam_sources)} sources "
                f"for n_beams={self.n_beams}; one source per beam"
            )

    # ------------------------------------------------------------------
    def column(self) -> ScenarioSetup:
        """The benchmark column, with the DM-range override applied."""
        column = setup_by_key(self.setup)
        if self.n_dms is None or self.n_dms == column.grid.n_dms:
            return column
        grid = DMTrialGrid(
            n_dms=self.n_dms,
            first=column.grid.first,
            step=column.grid.step,
        )
        return replace(column, grid=grid)

    def signal_beams(self) -> tuple[int, ...]:
        """The beam neighbourhood carrying the astrophysical signal."""
        centre = self.n_beams // 2
        lo = max(0, centre - self.signal_radius)
        hi = min(self.n_beams - 1, centre + self.signal_radius)
        return tuple(range(lo, hi + 1))

    def identity(self) -> dict:
        """The resume-identity dict the survey ledger is keyed by."""
        column = self.column()
        return {
            "seed": int(self.seed),
            "scenario": self.scenario if not self.beam_sources else "",
            "setup": column.key,
            "n_beams": int(self.n_beams),
            "n_dms": int(column.grid.n_dms),
            "backend": self.backend or "auto",
            "signal_radius": int(self.signal_radius),
            "adjacent_attenuation": float(self.adjacent_attenuation),
            "explicit_sources": bool(self.beam_sources),
        }
