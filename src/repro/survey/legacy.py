"""Execution bodies behind the deprecated single-host pipeline shims.

PR-8 made :mod:`repro.survey` the blessed way to run a multi-beam
survey; the old entrypoints — :meth:`repro.pipeline.survey.SurveyPipeline.run`
and :meth:`repro.pipeline.multibeam.MultiBeamScheduler.execute` — stay
importable and behaviourally identical, but warn once and delegate
here.  The bodies moved verbatim (same spans, same metrics, same
results) so existing callers and goldens see no change; only the
warning is new.  This mirrors how the PR-5/PR-7 deprecations routed the
legacy execute entrypoints through :mod:`repro.run`.
"""

from __future__ import annotations

import numpy as np

from repro.astro.periodicity import PeriodicityCandidate, search_periodicity
from repro.astro.rfi import mask_noisy_channels, zero_dm_filter
from repro.astro.snr import DMDetection, detect_dm
from repro.obs import get_registry, span
from repro.utils.validation import require_positive_int


def run_survey_pipeline(pipeline, n_chunks: int):
    """The moved body of ``SurveyPipeline.run`` (single-host survey)."""
    from repro.pipeline.survey import SurveyReport

    require_positive_int(n_chunks, "n_chunks")
    results = [
        _run_beam(pipeline, beam, n_chunks)
        for beam in pipeline.telescope.beams
    ]
    return SurveyReport(
        setup_name=pipeline.telescope.setup.name,
        device_name=pipeline.device.name,
        n_dms=pipeline.grid.n_dms,
        beams=tuple(results),
    )


def _run_beam(pipeline, beam, n_chunks: int):
    from repro.pipeline.survey import BeamResult

    setup = pipeline.telescope.setup
    best_sp: DMDetection | None = None
    periodic: list[PeriodicityCandidate] = []
    masked = 0
    realtime = True
    series_accumulator: list[np.ndarray] = []

    with span(
        "pipeline.beam", beam=beam.label, setup=setup.name
    ) as beam_span:
        for chunk in pipeline.telescope.stream(
            beam, n_chunks, pipeline.grid
        ):
            data = chunk.data
            if pipeline.rfi_mitigation:
                with span("pipeline.rfi", beam=beam.label):
                    masked += mask_noisy_channels(data).n_masked
                    zero_dm_filter(data)
            result = pipeline._stream.process(chunk)
            realtime &= result.realtime
            with span("pipeline.single_pulse", beam=beam.label):
                detection = detect_dm(result.output, pipeline.grid.values)
            if detection.snr >= pipeline.single_pulse_threshold and (
                best_sp is None or detection.snr > best_sp.snr
            ):
                best_sp = detection
            series_accumulator.append(result.output)

        # Periodicity runs on the concatenated dedispersed series:
        # longer baselines resolve lower frequencies and raise
        # significance.
        full = np.concatenate(series_accumulator, axis=1)
        with span("pipeline.periodicity", beam=beam.label):
            periodic = search_periodicity(
                full,
                pipeline.grid.values,
                setup.samples_per_second,
                sigma_threshold=pipeline.periodicity_threshold,
            )
        beam_span.attributes["realtime"] = realtime
    registry = get_registry()
    registry.counter(
        "repro_pipeline_beams_total", setup=setup.name
    ).inc()
    if best_sp is not None or periodic:
        registry.counter(
            "repro_pipeline_candidates_total", setup=setup.name
        ).inc()
    return BeamResult(
        beam_index=beam.index,
        beam_label=beam.label,
        chunks_processed=n_chunks,
        best_single_pulse=best_sp,
        periodicity_candidates=tuple(periodic[:5]),
        masked_channels=masked,
        realtime=realtime,
    )


def execute_beam_assignment(
    scheduler, n_beams: int, duration_s: float = 1.0, **engine_kwargs
):
    """The moved body of ``MultiBeamScheduler.execute``."""
    from repro.sched import ExecutionEngine

    assignment = scheduler.assign(n_beams)
    engine = ExecutionEngine(
        [
            (
                scheduler.device,
                assignment.devices_needed,
                scheduler.device_memory_bytes,
            )
        ],
        scheduler.setup,
        scheduler.grid,
        n_beams,
        duration_s,
        **engine_kwargs,
    )
    return engine.run()
