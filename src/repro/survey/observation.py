"""Beam-correlated realization of a multi-beam observation.

A real multi-beam receiver sees *one* sky through many primary beams,
so the per-beam data streams are correlated in exactly the way the
cross-beam coincidence stage (:mod:`repro.survey.coincidence`) exploits:

* **noise** is independent receiver noise — decorrelated per beam by
  renaming each :class:`~repro.astro.source.NoiseSource`'s stream;
* **RFI** enters through the sidelobes, which every beam shares — the
  RFI sources are injected *verbatim* into every beam, and because every
  beam draws from the same derived seed the events land at identical
  times with identical amplitudes (the all-beam signature the broadband
  veto keys on);
* **signal** enters through the primary beam pattern — the scenario's
  astrophysical components are injected only into the neighbourhood
  ``plan.signal_beams()`` around the centre beam, attenuated by
  ``adjacent_attenuation ** distance`` via
  :class:`~repro.astro.source.ScaledSource`.

Realization reuses the scenario catalogue: the scenario's composite
source is *decomposed* into those three populations, so any catalogue
scenario becomes a multi-beam survey without a parallel catalogue.  The
per-beam search runs with RFI mitigation and the zero-DM veto OFF —
per-beam defenses would eat the broadband RFI before the coincidencer
ever saw it, and the whole point of the survey stage is that the
cross-beam veto replaces them.

Determinism: everything derives from
``derive_seed(plan.seed, "survey", scenario, setup)``; same plan, same
bytes — the property the survey ledger's byte-identical resume rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.astro.source import (
    BroadbandRFISource,
    CompositeSource,
    NarrowbandRFISource,
    NoiseSource,
    ScaledSource,
    SignalSource,
    SignalTruth,
    stream_chunks,
)
from repro.astro.telescope import StreamChunk
from repro.scenarios.catalog import (
    _SIGNAL_KINDS,
    _apply_chunk_faults,
    scenario_by_name,
)
from repro.scenarios.truth import ExpectedCandidate
from repro.search.sift import SiftPolicy
from repro.search.stream import SearchConfig
from repro.utils.rng import RandomStreams, derive_seed

#: Sources every beam shares verbatim (sidelobe RFI).
_RFI_SOURCES = (BroadbandRFISource, NarrowbandRFISource)


@dataclass(frozen=True)
class BeamObservation:
    """One beam's realized stream plus what was injected into it."""

    beam: int
    chunks: tuple[StreamChunk, ...]
    signal_truth: SignalTruth


@dataclass(frozen=True)
class SurveyExpectation:
    """One injected signal and the beams that carry it."""

    expected: ExpectedCandidate
    beams: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "beams", tuple(self.beams))


@dataclass(frozen=True)
class SurveyTruth:
    """Everything a survey run is scored against."""

    n_beams: int
    expectations: tuple[SurveyExpectation, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "expectations", tuple(self.expectations)
        )


@dataclass(frozen=True)
class MultiBeamObservation:
    """A realized multi-beam observation, ready to search."""

    setup: ObservationSetup
    grid: DMTrialGrid
    beams: tuple[BeamObservation, ...]
    truth: SurveyTruth
    search_config: SearchConfig

    @property
    def n_beams(self) -> int:
        return len(self.beams)

    @property
    def chunk_seconds(self) -> float:
        """The stream cadence (one chunk's span of sky time)."""
        return self.setup.samples_per_batch / self.setup.samples_per_second


def survey_sift_policy(grid: DMTrialGrid) -> SiftPolicy:
    """The scenario clustering policy with the zero-DM veto disabled.

    Per-beam vetoes are deliberately off in a survey: broadband RFI must
    *reach* the coincidence stage so the cross-beam veto (which knows
    more than any single beam can) does the rejecting.
    """
    return SiftPolicy(
        dm_radius=float(grid.last - grid.first),
        time_slack=16,
        zero_dm_veto=False,
        broadband_veto_fraction=1.0,
    )


def _beam_variant(
    child: SignalSource,
    beam: int,
    centre: int,
    signal_beams: tuple[int, ...],
    attenuation: float,
) -> SignalSource | None:
    """What one scenario component looks like from one beam."""
    if isinstance(child, NoiseSource):
        # Independent receiver noise: same statistics, different draws.
        return replace(child, stream=f"{child.stream}.b{beam:03d}")
    if isinstance(child, _RFI_SOURCES):
        # Sidelobe RFI: identical in every beam (same stream, same seed).
        return child
    if beam not in signal_beams:
        return None
    factor = attenuation ** abs(beam - centre)
    return child if factor == 1.0 else ScaledSource(child, factor)


def realize_survey(plan) -> MultiBeamObservation:
    """Realize a :class:`~repro.survey.plan.SurveyPlan` into beam streams.

    Scenario mode decomposes the catalogue scenario's source composition
    beam-by-beam (module docstring); explicit ``beam_sources`` mode
    realizes each beam's source independently, with that beam's own
    derived stream, and expects each beam's signals in that beam only.
    """
    column = plan.column()
    if plan.beam_sources:
        return _realize_explicit(plan, column.setup, column.grid)
    return _realize_scenario(plan, column.setup, column.grid)


def _realize_scenario(
    plan, setup: ObservationSetup, grid: DMTrialGrid
) -> MultiBeamObservation:
    scenario = scenario_by_name(plan.scenario)
    n_chunks = plan.n_chunks or scenario.n_chunks
    root = derive_seed(plan.seed, "survey", scenario.name, setup.name)
    source = scenario.build(
        setup, grid, RandomStreams(root).spawn("build")
    )
    children = (
        source.sources
        if isinstance(source, CompositeSource)
        else (source,)
    )
    signal_beams = plan.signal_beams()
    centre = plan.n_beams // 2
    beams = []
    centre_truth = SignalTruth(())
    for b in range(plan.n_beams):
        variants = tuple(
            variant
            for child in children
            if (
                variant := _beam_variant(
                    child,
                    b,
                    centre,
                    signal_beams,
                    plan.adjacent_attenuation,
                )
            )
            is not None
        )
        if not variants:
            # Degenerate scenario (signal only, beam outside the
            # neighbourhood): an empty sky still has receiver noise.
            variants = (
                NoiseSource(sigma=1.0, stream=f"survey-floor.b{b:03d}"),
            )
        beam_source = (
            variants[0]
            if len(variants) == 1
            else CompositeSource(variants)
        )
        # Same derived seed for every beam: the shared-sky draws (RFI
        # event times, per-pulse modulation) are cross-beam identical,
        # while the renamed noise streams decorrelate the noise.
        chunks, signal_truth = stream_chunks(
            beam_source,
            setup,
            grid,
            n_chunks,
            RandomStreams(derive_seed(root, "signal")),
            beam_index=b,
        )
        chunks, _, _ = _apply_chunk_faults(
            chunks,
            scenario.faults,
            RandomStreams(derive_seed(root, "chunk-faults", b)),
        )
        if b == centre:
            centre_truth = signal_truth
        beams.append(
            BeamObservation(
                beam=b, chunks=chunks, signal_truth=signal_truth
            )
        )
    expectations = tuple(
        SurveyExpectation(
            expected=ExpectedCandidate(
                dm=component.dm,
                trial=grid.index_of(component.dm),
                time_samples=component.time_samples,
                trial_tolerance=scenario.trial_tolerance,
                min_snr=scenario.min_snr,
            ),
            beams=signal_beams,
        )
        for component in centre_truth.components
        if component.kind in _SIGNAL_KINDS and component.dm is not None
    )
    base = scenario.search_config(setup, grid)
    config = replace(
        base,
        rfi_mitigation=False,
        sift_policy=replace(base.sift_policy, zero_dm_veto=False),
    )
    return MultiBeamObservation(
        setup=setup,
        grid=grid,
        beams=tuple(beams),
        truth=SurveyTruth(
            n_beams=plan.n_beams, expectations=expectations
        ),
        search_config=config,
    )


def _realize_explicit(
    plan, setup: ObservationSetup, grid: DMTrialGrid
) -> MultiBeamObservation:
    root = derive_seed(plan.seed, "survey", "explicit", setup.name)
    n_chunks = plan.n_chunks or 4
    beams = []
    expectations = []
    for b, source in enumerate(plan.beam_sources):
        chunks, signal_truth = stream_chunks(
            source,
            setup,
            grid,
            n_chunks,
            RandomStreams(derive_seed(root, "beam", b)),
            beam_index=b,
        )
        beams.append(
            BeamObservation(
                beam=b, chunks=chunks, signal_truth=signal_truth
            )
        )
        expectations.extend(
            SurveyExpectation(
                expected=ExpectedCandidate(
                    dm=component.dm,
                    trial=grid.index_of(component.dm),
                    time_samples=component.time_samples,
                ),
                beams=(b,),
            )
            for component in signal_truth.components
            if component.kind in _SIGNAL_KINDS
            and component.dm is not None
        )
    config = SearchConfig(
        sift_policy=survey_sift_policy(grid), rfi_mitigation=False
    )
    return MultiBeamObservation(
        setup=setup,
        grid=grid,
        beams=tuple(beams),
        truth=SurveyTruth(
            n_beams=plan.n_beams, expectations=tuple(expectations)
        ),
        search_config=config,
    )
