"""repro.survey: survey-in-a-box — stream to coincidence-vetoed candidates.

One resumable driver from a multi-beam telescope stream to cross-beam
coincidence-vetoed candidates, composing every layer below it:

* :class:`SurveyPlan` (:mod:`repro.survey.plan`) — the pure-value
  configuration: scenario, benchmark setup, beam count, DM range, seed,
  beam-correlation and coincidence knobs;
* :func:`realize_survey` (:mod:`repro.survey.observation`) — the
  beam-correlated realization: signal into a localized neighbourhood of
  beams, RFI identically into all beams, noise independent per beam;
* :class:`SurveyRun` / :func:`run_survey` (:mod:`repro.survey.driver`)
  — per-beam :class:`~repro.search.stream.StreamingSearch` under one
  virtual clock, fleet dispatch through
  :class:`~repro.sched.ExecutionEngine` (fault injection included),
  checkpointed in the append-only
  :class:`~repro.sched.SurveyLedger` so ``--resume`` skips completed
  beams byte-identically;
* :func:`coincide` (:mod:`repro.survey.coincidence`) — the cross-beam
  stage: all-beam broadband groups vetoed, adjacent-beam localized
  groups promoted, everything truth-scored
  (:func:`score_survey`).

Typical use::

    from repro.survey import SurveyPlan, run_survey

    report = run_survey(
        SurveyPlan(scenario="rfi_storm", n_beams=8),
        ledger_path="survey.jsonl",
    )
    print(report.summary())

or, from the command line, ``repro survey --scenario rfi_storm
--beams 8 --ledger survey.jsonl`` (add ``--resume`` after an
interruption).  See ``docs/survey.md``.
"""

from repro.survey.coincidence import (
    CLASSIFICATIONS,
    CoincidenceGroup,
    CoincidencePolicy,
    CoincidenceResult,
    SurveyScore,
    coincide,
    score_survey,
)
from repro.survey.driver import (
    DEFAULT_DEVICE_MEMORY,
    SurveyRun,
    SurveyRunReport,
    candidate_doc,
    candidate_from_doc,
    cluster_doc,
    cluster_from_doc,
    run_survey,
)
from repro.survey.observation import (
    BeamObservation,
    MultiBeamObservation,
    SurveyExpectation,
    SurveyTruth,
    realize_survey,
    survey_sift_policy,
)
from repro.survey.plan import SurveyPlan

__all__ = [
    "CLASSIFICATIONS",
    "DEFAULT_DEVICE_MEMORY",
    "BeamObservation",
    "CoincidenceGroup",
    "CoincidencePolicy",
    "CoincidenceResult",
    "MultiBeamObservation",
    "SurveyExpectation",
    "SurveyPlan",
    "SurveyRun",
    "SurveyRunReport",
    "SurveyScore",
    "SurveyTruth",
    "candidate_doc",
    "candidate_from_doc",
    "cluster_doc",
    "cluster_from_doc",
    "coincide",
    "realize_survey",
    "run_survey",
    "score_survey",
    "survey_sift_policy",
]
