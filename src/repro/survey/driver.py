"""The survey driver: one resumable command from stream to candidates.

:class:`SurveyRun` composes the existing layers end to end — the
scenario catalogue realized beam-correlated
(:mod:`repro.survey.observation`), one
:class:`~repro.search.stream.StreamingSearch` per beam under the shared
virtual clock, the simulated accelerator fleet of
:class:`~repro.sched.ExecutionEngine` (with fault injection) sizing the
survey's makespan, and the cross-beam coincidence stage
(:mod:`repro.survey.coincidence`) — checkpointing through the
append-only :class:`~repro.sched.ledger.SurveyLedger`.

Resume contract
---------------
Every per-beam record is deterministic (no wall-clock fields) and every
ledger line canonical JSON, so interrupting a survey and resuming it
(``repro survey --ledger L --resume``) converges to a ledger file
byte-identical to an uninterrupted run's, and to the same
:class:`SurveyRunReport`.  The coincidence stage always consumes the
*serialised* ledger records — never in-memory cluster objects — so live
and resumed beams feed it literally the same values.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.astro.candidates import Candidate, SiftedCandidate
from repro.errors import LedgerError, PipelineError
from repro.hardware import device_by_name
from repro.obs import get_registry, span
from repro.sched import ExecutionEngine, RunReport
from repro.sched.ledger import (
    SurveyBeamRecord,
    SurveyLedger,
    load_survey_ledger,
)
from repro.search.stream import StreamingSearch
from repro.survey.coincidence import (
    CoincidenceResult,
    SurveyScore,
    coincide,
    score_survey,
)
from repro.survey.observation import realize_survey
from repro.survey.plan import SurveyPlan

#: Memory per simulated fleet device (matches the multi-beam planner).
DEFAULT_DEVICE_MEMORY = 3 * 1024**3


# ----------------------------------------------------------------------
# Candidate serde: ledger lines are the coincidence stage's only input
# ----------------------------------------------------------------------
def candidate_doc(candidate: Candidate) -> dict:
    """One candidate as a JSON-ready dict (beam provenance included)."""
    return {
        "dm_index": int(candidate.dm_index),
        "dm": float(candidate.dm),
        "snr": float(candidate.snr),
        "time_sample": int(candidate.time_sample),
        "width": int(candidate.width),
        "beam": int(candidate.beam),
    }


def candidate_from_doc(doc: dict) -> Candidate:
    """Rebuild a candidate from its ledger rendering."""
    return Candidate(
        dm_index=int(doc["dm_index"]),
        dm=float(doc["dm"]),
        snr=float(doc["snr"]),
        time_sample=int(doc["time_sample"]),
        width=int(doc["width"]),
        beam=int(doc.get("beam", 0)),
    )


def cluster_doc(cluster: SiftedCandidate) -> dict:
    """One sifted cluster as a JSON-ready dict."""
    return {
        "best": candidate_doc(cluster.best),
        "n_members": int(cluster.n_members),
        "dm_extent": float(cluster.dm_extent),
        "members": [candidate_doc(m) for m in cluster.members],
    }


def cluster_from_doc(doc: dict) -> SiftedCandidate:
    """Rebuild a sifted cluster from its ledger rendering."""
    members = tuple(candidate_from_doc(m) for m in doc["members"])
    return SiftedCandidate(
        best=candidate_from_doc(doc["best"]), members=members
    )


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SurveyRunReport:
    """Everything one survey run produced."""

    scenario: str
    setup_key: str
    backend: str
    n_beams: int
    n_dms: int
    beams: tuple[SurveyBeamRecord, ...]
    resumed_beams: tuple[int, ...]
    coincidence: CoincidenceResult
    score: SurveyScore
    fleet: RunReport
    recovered_truncation: bool = False

    @property
    def beam_verdicts(self) -> tuple[str, ...]:
        """Per-beam stream verdicts, beam order."""
        return tuple(r.verdict["verdict"] for r in self.beams)

    @property
    def realtime(self) -> bool:
        """Every beam sustained real time and so did the fleet."""
        return (
            all(v == "realtime_sustained" for v in self.beam_verdicts)
            and self.fleet.realtime_sustained
        )

    @property
    def degraded(self) -> bool:
        """Any beam shed chunks, or the fleet lost shards."""
        return (
            any(v == "degraded" for v in self.beam_verdicts)
            or not self.fleet.complete
        )

    @property
    def verdict(self) -> str:
        """``realtime_sustained`` | ``complete`` | ``degraded``."""
        if self.degraded:
            return "degraded"
        if self.realtime:
            return "realtime_sustained"
        return "complete"

    @property
    def makespan_s(self) -> float:
        """The fleet-dispatch makespan of the whole survey."""
        return self.fleet.makespan_s

    def as_dict(self) -> dict:
        """JSON-ready representation (what the benchmark records)."""
        return {
            "scenario": self.scenario,
            "setup": self.setup_key,
            "backend": self.backend,
            "n_beams": int(self.n_beams),
            "n_dms": int(self.n_dms),
            "verdict": self.verdict,
            "realtime": self.realtime,
            "beam_verdicts": list(self.beam_verdicts),
            "resumed_beams": [int(b) for b in self.resumed_beams],
            "recovered_truncation": self.recovered_truncation,
            "makespan_s": float(self.makespan_s),
            "fleet": {
                "makespan_s": float(self.fleet.makespan_s),
                "throughput": float(self.fleet.throughput),
                "complete": self.fleet.complete,
                "degraded": self.fleet.degraded,
                "realtime_sustained": self.fleet.realtime_sustained,
            },
            "score": self.score.as_dict(),
        }

    def summary(self) -> str:
        """Multi-line, human-readable report."""
        what = self.scenario or "explicit beam sources"
        lines = [
            f"survey: {what} on setup {self.setup_key!r}, "
            f"{self.n_beams} beams x {self.n_dms} trial DMs "
            f"({self.backend} backend) — {self.verdict}",
            f"  beams: {len(self.beams)} done"
            + (
                f" ({len(self.resumed_beams)} resumed from ledger"
                + (
                    ", truncated tail recovered)"
                    if self.recovered_truncation
                    else ")"
                )
                if self.resumed_beams
                else ""
            ),
            f"  fleet: makespan {self.fleet.makespan_s:.3f} s, "
            f"throughput {self.fleet.throughput:.2f} beam-seconds/s, "
            f"real time "
            f"{'SUSTAINED' if self.fleet.realtime_sustained else 'NOT sustained'}",
            f"  coincidence: {self.score.pre_clusters} per-beam clusters "
            f"-> {self.score.post_groups} kept groups "
            f"({self.score.n_vetoed} vetoed broadband, "
            f"{self.score.n_promoted} promoted localized)",
            f"  truth: recall {self.score.recall:.2f} "
            f"({self.score.n_matched}/{self.score.n_expected}), false "
            f"positives {self.score.pre_false_positives} pre -> "
            f"{self.score.post_false_positives} post",
        ]
        for group in self.coincidence.kept[:5]:
            best = group.best
            lines.append(
                f"    [{group.classification}] DM {best.dm:.2f} "
                f"(trial {best.dm_index}) S/N {best.snr:.1f} "
                f"t={best.time_sample} beams {list(group.beams)}"
            )
        for group in self.coincidence.vetoed[:3]:
            best = group.best
            lines.append(
                f"    vetoed[broadband] DM {best.dm:.2f} "
                f"S/N {best.snr:.1f} in {group.n_beams} beams"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
class SurveyRun:
    """One survey execution: realize, search per beam, coincidence.

    ``ledger_path`` enables checkpointing (one appended line per
    completed beam); ``resume=True`` loads that ledger first and skips
    its completed beams (a missing file starts fresh — the first run of
    a checkpointed survey).  ``crash_after=N`` injects a crash after N
    newly-searched beams: a partial line is written (as a real crash
    mid-append would leave) and :class:`~repro.errors.PipelineError`
    raised — the acceptance hook for the resume byte-identity test.
    """

    def __init__(
        self,
        plan: SurveyPlan,
        ledger_path: str | Path | None = None,
        resume: bool = False,
        crash_after: int | None = None,
    ):
        self.plan = plan
        self.ledger_path = Path(ledger_path) if ledger_path else None
        self.resume = resume
        self.crash_after = crash_after
        if resume and self.ledger_path is None:
            raise LedgerError("resume needs a ledger path to resume from")
        if crash_after is not None and self.ledger_path is None:
            raise LedgerError(
                "crash injection needs a ledger path to half-write"
            )

    # ------------------------------------------------------------------
    def _load_or_start(self) -> SurveyLedger:
        identity = self.plan.identity()
        if (
            self.resume
            and self.ledger_path is not None
            and self.ledger_path.exists()
        ):
            ledger = load_survey_ledger(self.ledger_path)
            if not ledger.matches(identity):
                raise LedgerError(
                    f"ledger at {self.ledger_path} records a different "
                    f"survey ({ledger.identity}) than this plan "
                    f"({identity}); refusing to mix"
                )
            return ledger
        return SurveyLedger(identity)

    def run(self) -> SurveyRunReport:
        """Drive the survey to completion; returns the report."""
        plan = self.plan
        registry = get_registry()
        column = plan.column()
        labels = {
            "scenario": plan.scenario if not plan.beam_sources else "",
            "setup": column.key,
        }
        with span(
            "survey.run", n_beams=plan.n_beams, **labels
        ) as run_span:
            observation = realize_survey(plan)
            ledger = self._load_or_start()
            recovered = ledger.truncated
            resumed = tuple(sorted(ledger.completed_beams()))
            if self.ledger_path is not None:
                # Rewriting the prefix drops any truncated tail, so the
                # file converges to the uninterrupted run's bytes.
                ledger.start(self.ledger_path)
            search = StreamingSearch(
                column.plan(),
                observation.search_config,
                backend=plan.backend,
            )
            searched = 0
            for beam_obs in observation.beams:
                beam = beam_obs.beam
                if beam in ledger.completed_beams():
                    registry.counter(
                        "repro_survey_beams_total",
                        outcome="resumed",
                        **labels,
                    ).inc()
                    continue
                if (
                    self.crash_after is not None
                    and searched >= self.crash_after
                ):
                    with self.ledger_path.open("a") as handle:
                        handle.write(f'{{"beam":{beam},"verdic')
                    raise PipelineError(
                        f"injected survey crash while appending "
                        f"beam {beam}"
                    )
                with span("survey.beam", beam=beam, **labels):
                    report = search.run(iter(beam_obs.chunks))
                record = SurveyBeamRecord(
                    beam=beam,
                    verdict=report.verdict_payload(),
                    accepted=[
                        cluster_doc(c) for c in report.result.accepted
                    ],
                    vetoed=[
                        {
                            "reason": v.reason,
                            "cluster": cluster_doc(v.cluster),
                        }
                        for v in report.result.vetoed
                    ],
                )
                if self.ledger_path is not None:
                    ledger.append_beam(self.ledger_path, record)
                else:
                    ledger.record_beam(record)
                searched += 1
                registry.counter(
                    "repro_survey_beams_total",
                    outcome="searched",
                    **labels,
                ).inc()

            fleet = self._dispatch_fleet(observation)

            with span("survey.coincidence", **labels) as co_span:
                # Deserialize from the ledger for live AND resumed
                # beams: the coincidence input is the serialized form,
                # so resume cannot diverge from a straight-through run.
                clusters = [
                    cluster_from_doc(doc)
                    for record in ledger.beam_records()
                    for doc in record.accepted
                ]
                result = coincide(
                    clusters, plan.n_beams, plan.coincidence
                )
                score = score_survey(observation.truth, clusters, result)
                co_span.attributes["groups"] = len(result.groups)
                co_span.attributes["vetoed"] = len(result.vetoed)

            report = SurveyRunReport(
                scenario=labels["scenario"],
                setup_key=column.key,
                backend=plan.backend or "auto",
                n_beams=plan.n_beams,
                n_dms=column.grid.n_dms,
                beams=ledger.beam_records(),
                resumed_beams=resumed,
                coincidence=result,
                score=score,
                fleet=fleet,
                recovered_truncation=recovered,
            )
            self._record_metrics(registry, labels, report)
            run_span.attributes["verdict"] = report.verdict
            run_span.attributes["recall"] = round(score.recall, 4)
        return report

    # ------------------------------------------------------------------
    def _dispatch_fleet(self, observation) -> RunReport:
        """Run the beams through the simulated accelerator fleet."""
        plan = self.plan
        column = plan.column()
        duration_s = (
            max(len(b.chunks) for b in observation.beams)
            * observation.chunk_seconds
        )
        with span("survey.fleet", setup=column.key):
            engine = ExecutionEngine(
                [
                    (
                        device_by_name(column.device_name),
                        plan.fleet_units,
                        DEFAULT_DEVICE_MEMORY,
                    )
                ],
                observation.setup,
                observation.grid,
                plan.n_beams,
                duration_s=duration_s,
                seed=plan.seed,
                faults=plan.faults,
            )
            return engine.run()

    def _record_metrics(self, registry, labels, report) -> None:
        registry.counter(
            "repro_survey_runs_total", outcome=report.verdict, **labels
        ).inc()
        for stage, count in (
            ("pre", report.score.pre_clusters),
            ("kept", report.score.post_groups),
            ("vetoed", report.score.n_vetoed),
            ("promoted", report.score.n_promoted),
        ):
            registry.counter(
                "repro_survey_candidates_total", stage=stage, **labels
            ).inc(count)
        for stage, count in (
            ("pre", report.score.pre_false_positives),
            ("post", report.score.post_false_positives),
        ):
            registry.counter(
                "repro_survey_false_positives_total",
                stage=stage,
                **labels,
            ).inc(count)
        registry.histogram(
            "repro_survey_recall_ratio", **labels
        ).observe(report.score.recall)
        registry.histogram(
            "repro_survey_makespan_seconds", **labels
        ).observe(report.makespan_s)


def run_survey(
    plan: SurveyPlan,
    ledger_path: str | Path | None = None,
    resume: bool = False,
    crash_after: int | None = None,
) -> SurveyRunReport:
    """Convenience wrapper: build a :class:`SurveyRun` and run it."""
    return SurveyRun(
        plan,
        ledger_path=ledger_path,
        resume=resume,
        crash_after=crash_after,
    ).run()
