"""Cross-beam coincidencing: the survey's strongest RFI veto.

Van Leeuwen's multi-beam argument: an astrophysical pulse enters the
telescope through the primary beam pattern, so it is seen in one beam or
a small *adjacent* neighbourhood; terrestrial interference arrives
through the sidelobes and is seen in *all* beams at once.  Grouping
per-beam sifted candidates that coincide in (DM, time) across beams
therefore separates the two populations without any spectral model:

* a group spanning most of the beams is **broadband** RFI — vetoed;
* a group confined to a small contiguous run of beams is **localized**
  — promoted (the strongest evidence the survey can produce);
* a **single-beam** group is kept but unpromoted (could be either);
* a **scattered** group (several non-adjacent beams, below the veto
  threshold) is kept — sidelobe detections of bright pulses land here.

Matching is member-level: two per-beam clusters coincide when *any*
member of one sits within ``trial_radius`` trials and ``time_slack``
samples of *any* member of the other.  The strongest member of a
cluster is not reliably the same pulse in every beam (noise moves the
peak), so best-vs-best matching would fracture real coincidences.

:func:`score_survey` scores the result against the realized
:class:`~repro.survey.observation.SurveyTruth`: recall over the
injected signals (beam-aware — the matching cluster must come from a
beam that actually carried the signal) and the pre- vs post-coincidence
false-positive counts.  Keeping a group attributable when *any* member
cluster is attributable guarantees ``post_fp <= pre_fp`` by
construction: every false-positive group is built entirely from
clusters that were already false positives per beam.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.astro.candidates import SiftedCandidate
from repro.errors import ValidationError
from repro.survey.observation import SurveyTruth
from repro.utils.validation import require_non_negative

#: The classifications a coincidence group can carry.
CLASSIFICATIONS = ("localized", "single_beam", "scattered", "broadband")


@dataclass(frozen=True)
class CoincidencePolicy:
    """How per-beam clusters group and which groups are vetoed.

    ``trial_radius`` / ``time_slack`` parameterise the member-level
    (DM, time) matching.  A group is vetoed as broadband when it spans
    at least ``max(min_veto_beams, ceil(veto_beam_fraction * n_beams))``
    distinct beams; it is promoted as localized when its beams form one
    contiguous run of 2..``max_signal_beams`` (a real source covers
    adjacent beams only).
    """

    trial_radius: int = 2
    time_slack: int = 32
    veto_beam_fraction: float = 0.7
    min_veto_beams: int = 3
    max_signal_beams: int = 4

    def __post_init__(self) -> None:
        require_non_negative(self.trial_radius, "trial_radius")
        require_non_negative(self.time_slack, "time_slack")
        if not 0.0 < self.veto_beam_fraction <= 1.0:
            raise ValidationError(
                "veto_beam_fraction must be in (0, 1]"
            )
        if self.min_veto_beams < 2:
            raise ValidationError("min_veto_beams must be >= 2")
        if self.max_signal_beams < 1:
            raise ValidationError("max_signal_beams must be >= 1")

    def veto_threshold(self, n_beams: int) -> int:
        """Distinct beams at which a group is broadband for ``n_beams``."""
        by_fraction = math.ceil(self.veto_beam_fraction * n_beams - 1e-9)
        return max(self.min_veto_beams, by_fraction)


@dataclass(frozen=True)
class CoincidenceGroup:
    """Per-beam clusters judged to be one physical (or RFI) event."""

    members: tuple[SiftedCandidate, ...]
    classification: str

    def __post_init__(self) -> None:
        if not self.members:
            raise ValidationError("a coincidence group needs members")
        if self.classification not in CLASSIFICATIONS:
            raise ValidationError(
                f"unknown classification {self.classification!r}; "
                f"expected one of {', '.join(CLASSIFICATIONS)}"
            )

    @property
    def beams(self) -> tuple[int, ...]:
        """Distinct beams contributing, ascending."""
        return tuple(sorted({m.best.beam for m in self.members}))

    @property
    def n_beams(self) -> int:
        return len(self.beams)

    @property
    def best(self):
        """The strongest candidate across every contributing beam."""
        return max((m.best for m in self.members), key=lambda c: c.snr)

    @property
    def vetoed(self) -> bool:
        return self.classification == "broadband"

    @property
    def promoted(self) -> bool:
        return self.classification == "localized"


@dataclass(frozen=True)
class CoincidenceResult:
    """Every group of one cross-beam coincidence pass."""

    groups: tuple[CoincidenceGroup, ...]
    n_beams: int

    @property
    def kept(self) -> tuple[CoincidenceGroup, ...]:
        return tuple(g for g in self.groups if not g.vetoed)

    @property
    def vetoed(self) -> tuple[CoincidenceGroup, ...]:
        return tuple(g for g in self.groups if g.vetoed)

    @property
    def promoted(self) -> tuple[CoincidenceGroup, ...]:
        return tuple(g for g in self.groups if g.promoted)


def _contiguous(beams: tuple[int, ...]) -> bool:
    return beams[-1] - beams[0] == len(beams) - 1


def _clusters_match(
    a: SiftedCandidate, b: SiftedCandidate, policy: CoincidencePolicy
) -> bool:
    """Member-level (DM, time) coincidence between two per-beam clusters."""
    return any(
        abs(ma.dm_index - mb.dm_index) <= policy.trial_radius
        and ma.overlaps_in_time(mb, slack=policy.time_slack)
        for ma in a.members
        for mb in b.members
    )


def _classify(
    beams: tuple[int, ...], n_beams: int, policy: CoincidencePolicy
) -> str:
    if len(beams) >= policy.veto_threshold(n_beams) and len(beams) >= 2:
        return "broadband"
    if len(beams) == 1:
        return "single_beam"
    if _contiguous(beams) and len(beams) <= policy.max_signal_beams:
        return "localized"
    return "scattered"


def coincide(
    clusters,
    n_beams: int,
    policy: CoincidencePolicy | None = None,
) -> CoincidenceResult:
    """Group per-beam sifted clusters across beams and classify each group.

    ``clusters`` is every beam's accepted
    :class:`~repro.astro.candidates.SiftedCandidate` pooled together
    (each carries its beam on its candidates).  Grouping is greedy in
    descending best-S/N order: a cluster joins the first existing group
    it coincides with (member-level), else seeds a new group.
    """
    if n_beams < 1:
        raise ValidationError("n_beams must be >= 1")
    policy = policy or CoincidencePolicy()
    ordered = sorted(clusters, key=lambda c: -c.best.snr)
    grouped: list[list[SiftedCandidate]] = []
    for cluster in ordered:
        for group in grouped:
            if any(
                _clusters_match(cluster, member, policy)
                for member in group
            ):
                group.append(cluster)
                break
        else:
            grouped.append([cluster])
    groups = tuple(
        CoincidenceGroup(
            members=tuple(group),
            classification=_classify(
                tuple(sorted({m.best.beam for m in group})),
                n_beams,
                policy,
            ),
        )
        for group in grouped
    )
    return CoincidenceResult(groups=groups, n_beams=n_beams)


# ----------------------------------------------------------------------
# Truth scoring
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SurveyScore:
    """Recall and pre-/post-coincidence false positives of one survey."""

    recall: float
    n_expected: int
    n_matched: int
    pre_clusters: int
    pre_false_positives: int
    post_groups: int
    post_false_positives: int
    n_vetoed: int
    n_promoted: int

    @property
    def fp_reduced(self) -> bool:
        """Whether coincidencing did not add false positives."""
        return self.post_false_positives <= self.pre_false_positives

    def as_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "recall": float(self.recall),
            "n_expected": int(self.n_expected),
            "n_matched": int(self.n_matched),
            "pre_clusters": int(self.pre_clusters),
            "pre_false_positives": int(self.pre_false_positives),
            "post_groups": int(self.post_groups),
            "post_false_positives": int(self.post_false_positives),
            "n_vetoed": int(self.n_vetoed),
            "n_promoted": int(self.n_promoted),
        }


def _attributable(cluster: SiftedCandidate, truth: SurveyTruth) -> bool:
    """Whether one per-beam cluster is explained by any injected signal."""
    return any(
        e.expected.matches_cluster(cluster) or e.expected.attributable(cluster)
        for e in truth.expectations
    )


def score_survey(
    truth: SurveyTruth,
    per_beam_clusters,
    result: CoincidenceResult,
) -> SurveyScore:
    """Score a coincidence pass against the realized survey truth.

    ``per_beam_clusters`` is the same pooled cluster list the
    coincidence pass consumed — the *pre*-coincidence population whose
    false positives the veto must not exceed.
    """
    clusters = list(per_beam_clusters)
    matched = sum(
        1
        for e in truth.expectations
        if any(
            e.expected.matches_cluster(m) and m.best.beam in e.beams
            for g in result.kept
            for m in g.members
        )
    )
    pre_fp = sum(1 for c in clusters if not _attributable(c, truth))
    post_fp = sum(
        1
        for g in result.kept
        if not any(_attributable(m, truth) for m in g.members)
    )
    n = len(truth.expectations)
    return SurveyScore(
        recall=matched / n if n else 1.0,
        n_expected=n,
        n_matched=matched,
        pre_clusters=len(clusters),
        pre_false_positives=pre_fp,
        post_groups=len(result.kept),
        post_false_positives=post_fp,
        n_vetoed=len(result.vetoed),
        n_promoted=len(result.promoted),
    )
