"""repro: auto-tuning dedispersion for many-core accelerators.

A full reproduction of Sclocco et al., "Auto-Tuning Dedispersion for
Many-Core Accelerators" (IPDPS 2014): the tunable dedispersion kernel, the
auto-tuner, the observational setups, a performance simulator for the five
accelerators of Table I, and drivers regenerating every table and figure
of the paper's evaluation.

Quickstart::

    from repro import apertif, DMTrialGrid, dedisperse, generate_observation
    from repro import SyntheticPulsar

    setup = apertif(samples_per_batch=2000)
    grid = DMTrialGrid(n_dms=64)
    data = generate_observation(setup, 0.1,
                                pulsars=[SyntheticPulsar(0.02, dm=8.0)],
                                max_dm=grid.last)
    output, plan = dedisperse(data, setup, grid)
"""

from repro.constants import (
    DISPERSION_CONSTANT,
    INPUT_INSTANCES,
    DEFAULT_DM_FIRST,
    DEFAULT_DM_STEP,
)
from repro.errors import (
    ReproError,
    ValidationError,
    ConfigurationError,
    DeviceError,
    TuningError,
    PipelineError,
    ExperimentError,
)
from repro.astro import (
    ObservationSetup,
    apertif,
    lofar,
    DMTrialGrid,
    SyntheticPulsar,
    generate_observation,
    detect_dm,
    build_ddplan,
    search_periodicity,
    zero_dm_filter,
)
from repro.hardware import (
    DeviceSpec,
    hd7970,
    xeon_phi_5110p,
    gtx680,
    k20,
    gtx_titan,
    xeon_e5_2620,
    paper_accelerators,
    all_devices,
    device_by_name,
    PerformanceModel,
    KernelMetrics,
    CPUModel,
)
from repro.core import (
    KernelConfiguration,
    AutoTuner,
    TuningResult,
    DedispersionPlan,
    dedisperse,
    dedisperse_reference,
    OptimumStatistics,
    best_fixed_configuration,
    SubbandPlan,
    dedisperse_subband,
    hill_climb,
    random_search,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DISPERSION_CONSTANT",
    "INPUT_INSTANCES",
    "DEFAULT_DM_FIRST",
    "DEFAULT_DM_STEP",
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "DeviceError",
    "TuningError",
    "PipelineError",
    "ExperimentError",
    "ObservationSetup",
    "apertif",
    "lofar",
    "DMTrialGrid",
    "SyntheticPulsar",
    "generate_observation",
    "detect_dm",
    "DeviceSpec",
    "hd7970",
    "xeon_phi_5110p",
    "gtx680",
    "k20",
    "gtx_titan",
    "xeon_e5_2620",
    "paper_accelerators",
    "all_devices",
    "device_by_name",
    "PerformanceModel",
    "KernelMetrics",
    "CPUModel",
    "KernelConfiguration",
    "AutoTuner",
    "TuningResult",
    "DedispersionPlan",
    "dedisperse",
    "dedisperse_reference",
    "OptimumStatistics",
    "best_fixed_configuration",
    "build_ddplan",
    "search_periodicity",
    "zero_dm_filter",
    "SubbandPlan",
    "dedisperse_subband",
    "hill_climb",
    "random_search",
]
