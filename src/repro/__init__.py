"""repro: auto-tuning dedispersion for many-core accelerators.

A full reproduction of Sclocco et al., "Auto-Tuning Dedispersion for
Many-Core Accelerators" (IPDPS 2014): the tunable dedispersion kernel, the
auto-tuner, the observational setups, a performance simulator for the five
accelerators of Table I, and drivers regenerating every table and figure
of the paper's evaluation.

Quickstart::

    from repro import (apertif, CompositeSource, DMTrialGrid, NoiseSource,
                       PulsarSource, RandomStreams, SyntheticPulsar,
                       dedisperse)

    setup = apertif(samples_per_batch=2000)
    grid = DMTrialGrid(n_dms=64)
    source = CompositeSource((
        NoiseSource(),
        PulsarSource(SyntheticPulsar(0.02, dm=8.0)),
    ))
    data, truth = source.generate(setup, 2000, RandomStreams(42))
    output, plan = dedisperse(data, setup, grid)

``__all__`` below is the curated public surface (the blessed entry
points; everything in it imports without warnings and is covered by
``tests/test_public_api.py``).  A few historic top-level aliases —
``hill_climb``, ``random_search``, ``CPUModel``, ``SubbandPlan``,
``dedisperse_subband``, ``dedisperse_reference``,
``best_fixed_configuration`` — still resolve via a module
``__getattr__`` but emit :class:`DeprecationWarning`; import them from
their home packages (``repro.core``, ``repro.hardware``) instead.
"""

import importlib
import warnings

from repro.constants import (
    DISPERSION_CONSTANT,
    INPUT_INSTANCES,
    DEFAULT_DM_FIRST,
    DEFAULT_DM_STEP,
)
from repro.errors import (
    ReproError,
    ValidationError,
    ConfigurationError,
    DeviceError,
    TuningError,
    PipelineError,
    ExperimentError,
    SchedulerError,
    ShardError,
    LedgerError,
    SchemaVersionError,
)
from repro.astro import (
    ObservationSetup,
    apertif,
    lofar,
    DMTrialGrid,
    SyntheticPulsar,
    generate_observation,
    detect_dm,
    build_ddplan,
    search_periodicity,
    zero_dm_filter,
    SignalSource,
    SignalTruth,
    NoiseSource,
    PulsarSource,
    BurstSource,
    BurstTrainSource,
    BroadbandRFISource,
    NarrowbandRFISource,
    CompositeSource,
)
from repro.hardware import (
    DeviceSpec,
    hd7970,
    xeon_phi_5110p,
    gtx680,
    k20,
    gtx_titan,
    xeon_e5_2620,
    paper_accelerators,
    all_devices,
    device_by_name,
    PerformanceModel,
    KernelMetrics,
)
from repro.core import (
    KernelConfiguration,
    AutoTuner,
    TuningResult,
    DedispersionPlan,
    dedisperse,
    OptimumStatistics,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    Span,
    get_registry,
    set_registry,
    use_registry,
    percentile,
    span,
)
from repro.tune import (
    SearchStrategy,
    SearchOutcome,
    ExhaustiveSearch,
    SuccessiveHalving,
    ModelGuidedSearch,
    build_strategy,
    StudyConfig,
    StudyResult,
    run_study,
    save_study,
    load_study,
    run_ablation,
    AblationReport,
)
from repro.service import (
    TuningService,
    TuningFleet,
    ServiceClient,
    ServiceResponse,
    TuneRequest,
    TuneResponse,
    TenantAdmission,
    FleetSnapshot,
    ServiceStats,
    StatsSnapshot,
)
from repro.sched import (
    ExecutionEngine,
    FaultProfile,
    RunLedger,
    RunReport,
    Shard,
    load_ledger,
    shard_survey,
)
from repro.run import (
    EXECUTION_MODES,
    ExecutionRequest,
    ExecutionResult,
    execute,
)
from repro.search import (
    MatchedFilterDetector,
    SearchConfig,
    SearchReport,
    SiftPolicy,
    StreamingSearch,
    search_stream,
    sift_candidates,
)
from repro.scenarios import (
    GroundTruth,
    MatrixReport,
    Scenario,
    run_matrix,
    scenario_by_name,
    scenario_catalog,
)
from repro.survey import (
    CoincidencePolicy,
    SurveyPlan,
    SurveyRun,
    SurveyRunReport,
    coincide,
    run_survey,
)
from repro.utils import RandomStreams, derive_seed

__version__ = "1.1.0"

#: The curated public surface.  Everything here is a blessed entry point:
#: importable from ``repro`` without a deprecation warning, stable across
#: minor versions, and asserted by ``tests/test_public_api.py``.
__all__ = [
    "__version__",
    # constants
    "DISPERSION_CONSTANT",
    "INPUT_INSTANCES",
    "DEFAULT_DM_FIRST",
    "DEFAULT_DM_STEP",
    # errors
    "ReproError",
    "ValidationError",
    "ConfigurationError",
    "DeviceError",
    "TuningError",
    "PipelineError",
    "ExperimentError",
    "SchedulerError",
    "ShardError",
    "LedgerError",
    "SchemaVersionError",
    # astro substrate
    "ObservationSetup",
    "apertif",
    "lofar",
    "DMTrialGrid",
    "SyntheticPulsar",
    "generate_observation",
    "detect_dm",
    "build_ddplan",
    "search_periodicity",
    "zero_dm_filter",
    # unified signal-source API
    "SignalSource",
    "SignalTruth",
    "NoiseSource",
    "PulsarSource",
    "BurstSource",
    "BurstTrainSource",
    "BroadbandRFISource",
    "NarrowbandRFISource",
    "CompositeSource",
    # scenario catalogue + golden regression harness
    "Scenario",
    "GroundTruth",
    "scenario_catalog",
    "scenario_by_name",
    "run_matrix",
    "MatrixReport",
    # hardware catalogue + simulator
    "DeviceSpec",
    "hd7970",
    "xeon_phi_5110p",
    "gtx680",
    "k20",
    "gtx_titan",
    "xeon_e5_2620",
    "paper_accelerators",
    "all_devices",
    "device_by_name",
    "PerformanceModel",
    "KernelMetrics",
    # the paper's contribution
    "KernelConfiguration",
    "AutoTuner",
    "TuningResult",
    "DedispersionPlan",
    "dedisperse",
    "OptimumStatistics",
    # observability
    "MetricsRegistry",
    "Tracer",
    "Span",
    "get_registry",
    "set_registry",
    "use_registry",
    "percentile",
    "span",
    # model-guided search & ablation
    "SearchStrategy",
    "SearchOutcome",
    "ExhaustiveSearch",
    "SuccessiveHalving",
    "ModelGuidedSearch",
    "build_strategy",
    "StudyConfig",
    "StudyResult",
    "run_study",
    "save_study",
    "load_study",
    "run_ablation",
    "AblationReport",
    # serving layer
    "TuningService",
    "TuningFleet",
    "ServiceClient",
    "ServiceResponse",
    "TuneRequest",
    "TuneResponse",
    "TenantAdmission",
    "FleetSnapshot",
    "ServiceStats",
    "StatsSnapshot",
    # execution engine
    "ExecutionEngine",
    "FaultProfile",
    "RunLedger",
    "RunReport",
    "Shard",
    "load_ledger",
    "shard_survey",
    # unified execution facade
    "EXECUTION_MODES",
    "ExecutionRequest",
    "ExecutionResult",
    "execute",
    # real-time candidate search
    "MatchedFilterDetector",
    "SearchConfig",
    "SearchReport",
    "SiftPolicy",
    "StreamingSearch",
    "search_stream",
    "sift_candidates",
    # multi-beam survey driver
    "CoincidencePolicy",
    "SurveyPlan",
    "SurveyRun",
    "SurveyRunReport",
    "coincide",
    "run_survey",
    # seeded randomness
    "RandomStreams",
    "derive_seed",
]

#: Deprecated top-level aliases -> (blessed home module, attribute).
_DEPRECATED_ALIASES: dict[str, tuple[str, str]] = {
    "hill_climb": ("repro.core.heuristics", "hill_climb"),
    "random_search": ("repro.core.heuristics", "random_search"),
    "dedisperse_reference": ("repro.core.dedisperse", "dedisperse_reference"),
    "best_fixed_configuration": ("repro.core.fixed", "best_fixed_configuration"),
    "SubbandPlan": ("repro.core.subband", "SubbandPlan"),
    "dedisperse_subband": ("repro.core.subband", "dedisperse_subband"),
    "CPUModel": ("repro.hardware.cpu_model", "CPUModel"),
}

_warned_aliases: set[str] = set()


def __getattr__(name: str):
    # Deprecation shims: old top-level import paths keep working but
    # point the caller at the blessed home.
    target = _DEPRECATED_ALIASES.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute = target
    if name not in _warned_aliases:
        _warned_aliases.add(name)
        warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated; use 'from {module_name} import {attribute}'",
            DeprecationWarning,
            stacklevel=2,
        )
    return getattr(importlib.import_module(module_name), attribute)


def __dir__() -> list[str]:
    return sorted(set(__all__) | set(_DEPRECATED_ALIASES) | set(globals()))
