"""High-level dedispersion entry points.

:func:`dedisperse` is the one-call API: channelised data in, DM-trial
matrix out, auto-tuned under the hood.  :func:`dedisperse_reference` is the
sequential Algorithm 1 oracle (re-exported from
:mod:`repro.baselines.cpu_reference`) that everything is tested against.
"""

from __future__ import annotations

import numpy as np

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.plan import DedispersionPlan
from repro.errors import ValidationError
from repro.hardware.catalog import hd7970
from repro.hardware.device import DeviceSpec


def dedisperse(
    input_data: np.ndarray,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    device: DeviceSpec | None = None,
    config: KernelConfiguration | None = None,
    samples: int | None = None,
) -> tuple[np.ndarray, DedispersionPlan]:
    """Dedisperse one batch of channelised data for every trial DM.

    ``input_data`` has shape ``(channels, t)``; the output batch length is
    ``samples`` (default: as many output samples as the input length and
    the grid's maximum delay allow, capped at the setup batch).  When no
    ``config`` is given the kernel is auto-tuned for ``device`` (default:
    the paper's best performer, the AMD HD7970).

    Returns ``(output, plan)`` — the ``(n_dms, samples)`` matrix plus the
    plan, so callers can reuse the tuned kernel for subsequent batches.
    """
    input_data = np.asarray(input_data)
    if input_data.ndim != 2 or input_data.shape[0] != setup.channels:
        raise ValidationError(
            f"input must have shape (channels={setup.channels}, t), "
            f"got {input_data.shape}"
        )
    device = device or hd7970()
    if samples is None:
        from repro.astro.dispersion import max_delay_samples

        available = input_data.shape[1] - max_delay_samples(setup, grid.last)
        if available <= 0:
            raise ValidationError(
                "input too short to dedisperse at the grid's maximum DM"
            )
        samples = min(available, setup.samples_per_batch)
    plan = DedispersionPlan.create(
        setup, grid, device, config=config, samples=samples
    )
    from repro.run import ExecutionRequest, execute

    result = execute(ExecutionRequest(data=input_data, plan=plan))
    return result.output, plan


def dedisperse_reference(
    input_data: np.ndarray,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int,
) -> np.ndarray:
    """Sequential Algorithm 1 (the correctness oracle)."""
    from repro.baselines.cpu_reference import dedisperse_vectorized

    return dedisperse_vectorized(input_data, setup, grid, samples)
