"""Persistence of tuning sweeps.

A production installation tunes once per (device, setup, instance) and
reuses the result for months — the paper's tuner is explicitly an offline
step.  This module serialises a :class:`~repro.core.tuner.TuningResult`
to a self-describing JSON document and back, so sweeps survive process
restarts and can be shipped between machines.

Reloaded sweeps re-simulate each stored configuration through the local
performance model, then *verify* the stored GFLOP/s against the fresh
numbers — a drifted model (edited catalogue, changed code) is detected
instead of silently trusted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup, apertif, lofar
from repro.core.config import KernelConfiguration
from repro.core.tuner import ConfigurationSample, TuningResult
from repro.errors import TuningError, ValidationError
from repro.hardware.catalog import device_by_name
from repro.hardware.model import PerformanceModel

#: Format version written into every document.
SCHEMA_VERSION: int = 1


def _setup_by_name(name: str) -> ObservationSetup:
    table = {"apertif": apertif, "lofar": lofar}
    try:
        return table[name.lower()]()
    except KeyError:
        raise ValidationError(
            f"unknown setup {name!r} in sweep document"
        ) from None


def sweep_to_document(result: TuningResult) -> dict:
    """Serialise a sweep to a JSON-ready dictionary."""
    return {
        "schema": SCHEMA_VERSION,
        "device": result.device.name,
        "setup": result.setup.name,
        "grid": {
            "n_dms": result.grid.n_dms,
            "first": result.grid.first,
            "step": result.grid.step,
        },
        "samples": [
            {
                "config": sample.config.as_tuple(),
                "gflops": sample.gflops,
            }
            for sample in result.samples
        ],
    }


def save_sweep(result: TuningResult, path: str | Path) -> Path:
    """Write a sweep document to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(sweep_to_document(result), indent=1))
    return path


def load_sweep(
    path: str | Path,
    verify: bool = True,
    tolerance: float = 1e-6,
) -> TuningResult:
    """Load a sweep document and rebuild the :class:`TuningResult`.

    With ``verify=True`` (default) every stored GFLOP/s is checked against
    a fresh simulation; a mismatch beyond ``tolerance`` (relative) raises
    :class:`TuningError` — the guard against loading sweeps produced by a
    different model parameterisation.
    """
    document = json.loads(Path(path).read_text())
    if document.get("schema") != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported sweep schema {document.get('schema')!r}"
        )
    device = device_by_name(document["device"])
    setup = _setup_by_name(document["setup"])
    grid_doc = document["grid"]
    grid = DMTrialGrid(
        n_dms=grid_doc["n_dms"],
        first=grid_doc["first"],
        step=grid_doc["step"],
    )
    model = PerformanceModel(device, setup, grid)

    samples: list[ConfigurationSample] = []
    for entry in document["samples"]:
        config = KernelConfiguration(*entry["config"])
        metrics = model.simulate(config, validate=False)
        stored = float(entry["gflops"])
        if verify and abs(metrics.gflops - stored) > tolerance * max(
            stored, 1.0
        ):
            raise TuningError(
                f"sweep at {path} no longer matches the model: "
                f"{config.describe()} stored {stored:.3f} GFLOP/s, "
                f"model now gives {metrics.gflops:.3f} "
                "(re-tune instead of loading)"
            )
        samples.append(
            ConfigurationSample(
                config=config, gflops=metrics.gflops, metrics=metrics
            )
        )
    return TuningResult(
        device=device, setup=setup, grid=grid, samples=tuple(samples)
    )
