"""Persistence of tuning sweeps.

A production installation tunes once per (device, setup, instance) and
reuses the result for months — the paper's tuner is explicitly an offline
step.  This module serialises a :class:`~repro.core.tuner.TuningResult`
to a self-describing JSON document and back, so sweeps survive process
restarts and can be shipped between machines.

Reloaded sweeps re-simulate each stored configuration through the local
performance model, then *verify* the stored GFLOP/s against the fresh
numbers — a drifted model (edited catalogue, changed code) is detected
instead of silently trusted.

Every document additionally carries a *model fingerprint*: a digest over
the device specification, the observational setup, and the model revision
that produced the sweep.  The fingerprint makes staleness detectable
*before* the expensive re-simulation (and without it, for callers that
load with ``verify=False``), and it is the cache-key ingredient the
:mod:`repro.service` layer uses so an edited device catalogue invalidates
cached sweeps instead of serving them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup, apertif, lofar
from repro.core.config import KernelConfiguration
from repro.core.tuner import ConfigurationSample, TuningResult
from repro.errors import SchemaVersionError, TuningError, ValidationError
from repro.hardware.catalog import device_by_name
from repro.hardware.device import DeviceSpec
from repro.hardware.model import PerformanceModel

#: Format version written into every document.
SCHEMA_VERSION: int = 2

#: Schema versions :func:`load_sweep` still understands.  Version 1
#: documents predate the model fingerprint and fall back to GFLOP/s
#: re-verification only.
SUPPORTED_SCHEMAS: tuple[int, ...] = (1, 2)

#: Revision of the performance-model *code*.  Bump when the model's
#: semantics change so that previously persisted sweeps (and service
#: cache entries) stop matching even for identical catalogue entries.
MODEL_REVISION: int = 1


def model_fingerprint(device: DeviceSpec, setup: ObservationSetup) -> str:
    """Digest of everything that determines a sweep's numbers.

    Covers every field of the device specification (published *and*
    calibrated), the observational setup, and :data:`MODEL_REVISION`.
    Editing any of them — e.g. recalibrating ``issue_efficiency`` in the
    catalogue — changes the fingerprint, which invalidates persisted
    sweeps and service cache entries keyed on it.
    """
    payload = {
        "model_revision": MODEL_REVISION,
        "device": asdict(device),
        "setup": asdict(setup),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    return digest.hexdigest()[:16]


def _setup_by_name(name: str) -> ObservationSetup:
    table = {"apertif": apertif, "lofar": lofar}
    try:
        return table[name.lower()]()
    except KeyError:
        raise ValidationError(
            f"unknown setup {name!r} in sweep document"
        ) from None


def sweep_to_document(result: TuningResult) -> dict:
    """Serialise a sweep to a JSON-ready dictionary."""
    return {
        "schema": SCHEMA_VERSION,
        "fingerprint": model_fingerprint(result.device, result.setup),
        "device": result.device.name,
        "setup": result.setup.name,
        "grid": {
            "n_dms": result.grid.n_dms,
            "first": result.grid.first,
            "step": result.grid.step,
        },
        "samples": [
            {
                "config": sample.config.as_tuple(),
                "gflops": sample.gflops,
            }
            for sample in result.samples
        ],
    }


def save_sweep(result: TuningResult, path: str | Path) -> Path:
    """Write a sweep document to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(sweep_to_document(result), indent=1))
    return path


def load_sweep(
    path: str | Path,
    verify: bool = True,
    tolerance: float = 1e-6,
) -> TuningResult:
    """Load a sweep document and rebuild the :class:`TuningResult`.

    With ``verify=True`` (default) the document's model fingerprint (when
    present) is checked against the current catalogue/model first — a
    cheap, early staleness test — and then every stored GFLOP/s is checked
    against a fresh simulation; a mismatch beyond ``tolerance`` (relative)
    raises :class:`TuningError` — the guard against loading sweeps
    produced by a different model parameterisation.
    """
    document = json.loads(Path(path).read_text())
    schema = document.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        if isinstance(schema, int) and schema > max(SUPPORTED_SCHEMAS):
            raise SchemaVersionError(
                f"unsupported sweep schema {schema!r}: this file was "
                f"written by a newer version of repro (this build reads "
                f"schemas up to {max(SUPPORTED_SCHEMAS)}); upgrade repro "
                f"or delete the store entry to re-tune"
            )
        raise ValidationError(f"unsupported sweep schema {schema!r}")
    device = device_by_name(document["device"])
    setup = _setup_by_name(document["setup"])
    stored_fingerprint = document.get("fingerprint")
    if verify and stored_fingerprint is not None:
        current = model_fingerprint(device, setup)
        if stored_fingerprint != current:
            raise TuningError(
                f"sweep at {path} was produced by a different model/"
                f"catalogue (fingerprint {stored_fingerprint} != {current}); "
                "re-tune instead of loading"
            )
    grid_doc = document["grid"]
    grid = DMTrialGrid(
        n_dms=grid_doc["n_dms"],
        first=grid_doc["first"],
        step=grid_doc["step"],
    )
    model = PerformanceModel(device, setup, grid)

    samples: list[ConfigurationSample] = []
    for entry in document["samples"]:
        config = KernelConfiguration(*entry["config"])
        metrics = model.simulate(config, validate=False)
        stored = float(entry["gflops"])
        if verify and abs(metrics.gflops - stored) > tolerance * max(
            stored, 1.0
        ):
            raise TuningError(
                f"sweep at {path} no longer matches the model: "
                f"{config.describe()} stored {stored:.3f} GFLOP/s, "
                f"model now gives {metrics.gflops:.3f} "
                "(re-tune instead of loading)"
            )
        samples.append(
            ConfigurationSample(
                config=config, gflops=metrics.gflops, metrics=metrics
            )
        )
    return TuningResult(
        device=device, setup=setup, grid=grid, samples=tuple(samples)
    )
