"""Heuristic alternatives to exhaustive auto-tuning.

The paper tunes exhaustively ("the algorithm is executed for every
meaningful combination").  That is affordable here because the search
space is small, but auto-tuning research offers cheaper strategies whose
quality is worth quantifying — especially since Figs. 8-10 show the
optimum is a statistical outlier.  Three classics are implemented on the
same meaningful-configuration space:

* **random search** — sample ``budget`` configurations uniformly;
* **greedy hill climbing** — start from a seed, repeatedly move to the
  best neighbour (one parameter changed one notch in the sorted value
  lists), restarting from random seeds until the budget is spent;
* **simulated annealing** — a cooled random walk over the same
  neighbourhood structure, able to cross the valleys that trap greedy
  ascent.

All return the same :class:`~repro.core.tuner.TuningResult` shape as the
exhaustive tuner (with the evaluated subset as the population), so every
downstream analysis applies.  ``benchmarks/bench_ablation_tuner.py``
compares their quality against the exhaustive optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.space import TuningSpace
from repro.core.tuner import ConfigurationSample, TuningResult
from repro.errors import TuningError
from repro.hardware.device import DeviceSpec
from repro.hardware.model import PerformanceModel
from repro.utils.rng import RandomStreams
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class HeuristicOutcome:
    """Result of a budgeted heuristic search.

    ``evaluations`` counts the distinct configurations actually pushed
    through the model (cache hits are free, so it can undershoot the
    budget); ``space_size`` is the meaningful-space size the search ran
    against, making :attr:`fraction_evaluated` directly comparable with
    :attr:`repro.tune.SearchOutcome.fraction_evaluated`.
    """

    result: TuningResult
    evaluations: int
    budget: int
    space_size: int = 0

    @property
    def best_gflops(self) -> float:
        """Best performance found within the budget."""
        return self.result.best.gflops

    @property
    def fraction_evaluated(self) -> float:
        """Evaluated fraction of the meaningful space (0 when unknown)."""
        if self.space_size <= 0:
            return 0.0
        return self.evaluations / self.space_size


class _Evaluator:
    """Caches model evaluations of meaningful configurations."""

    def __init__(
        self,
        device: DeviceSpec,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        configs: list[KernelConfiguration],
    ):
        self.device = device
        self.setup = setup
        self.grid = grid
        self.configs = configs
        self.config_set = set(configs)
        self.model = PerformanceModel(device, setup, grid)
        self.cache: dict[KernelConfiguration, ConfigurationSample] = {}

    def evaluate(self, config: KernelConfiguration) -> ConfigurationSample:
        if config not in self.cache:
            metrics = self.model.simulate(config, validate=False)
            self.cache[config] = ConfigurationSample(
                config=config, gflops=metrics.gflops, metrics=metrics
            )
        return self.cache[config]

    def result(self) -> TuningResult:
        if not self.cache:
            raise TuningError("heuristic search evaluated nothing")
        return TuningResult(
            device=self.device,
            setup=self.setup,
            grid=self.grid,
            samples=tuple(self.cache.values()),
        )


def _neighbours(
    config: KernelConfiguration, evaluator: _Evaluator
) -> list[KernelConfiguration]:
    """Meaningful configurations one notch away in a single parameter."""
    axes: dict[str, list[int]] = {"wt": [], "wd": [], "et": [], "ed": []}
    for c in evaluator.configs:
        axes["wt"].append(c.work_items_time)
        axes["wd"].append(c.work_items_dm)
        axes["et"].append(c.elements_time)
        axes["ed"].append(c.elements_dm)
    result: list[KernelConfiguration] = []
    current = {
        "wt": config.work_items_time,
        "wd": config.work_items_dm,
        "et": config.elements_time,
        "ed": config.elements_dm,
    }
    for axis in axes:
        values = sorted(set(axes[axis]))
        idx = values.index(current[axis]) if current[axis] in values else None
        if idx is None:
            continue
        for step in (-1, 1):
            j = idx + step
            if not 0 <= j < len(values):
                continue
            candidate_params = dict(current)
            candidate_params[axis] = values[j]
            candidate = KernelConfiguration(
                work_items_time=candidate_params["wt"],
                work_items_dm=candidate_params["wd"],
                elements_time=candidate_params["et"],
                elements_dm=candidate_params["ed"],
            )
            if candidate in evaluator.config_set:
                result.append(candidate)
    return result


def _make_evaluator(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int | None,
) -> _Evaluator:
    space = TuningSpace(
        device=device,
        setup=setup,
        grid=grid,
        samples=samples or 0,
    )
    configs = space.meaningful()
    if not configs:
        raise TuningError(
            f"search space is empty for {device.name}/{setup.name}"
        )
    return _Evaluator(device, setup, grid, configs)


def random_search(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    budget: int = 50,
    seed: int = 0,
    samples: int | None = None,
) -> HeuristicOutcome:
    """Uniformly sample ``budget`` meaningful configurations."""
    require_positive_int(budget, "budget")
    evaluator = _make_evaluator(device, setup, grid, samples)
    rng = RandomStreams(seed).python("random-search")
    n = min(budget, len(evaluator.configs))
    for config in rng.sample(evaluator.configs, n):
        evaluator.evaluate(config)
    return HeuristicOutcome(
        result=evaluator.result(),
        evaluations=len(evaluator.cache),
        budget=budget,
        space_size=len(evaluator.configs),
    )


def simulated_annealing(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    budget: int = 50,
    seed: int = 0,
    samples: int | None = None,
    initial_temperature: float = 0.5,
) -> HeuristicOutcome:
    """Annealed local search: accepts downhill moves early, cools to greedy.

    The acceptance temperature is a fraction of the best GFLOP/s seen so
    far and decays geometrically over the budget — the standard recipe
    that lets the walker escape the local optima that trap
    :func:`hill_climb` on the multimodal LOFAR space (Fig. 10's shape).
    """
    require_positive_int(budget, "budget")
    if initial_temperature <= 0:
        raise TuningError("initial_temperature must be positive")
    evaluator = _make_evaluator(device, setup, grid, samples)
    rng = RandomStreams(seed).python("annealing")

    current = evaluator.evaluate(rng.choice(evaluator.configs))
    best = current
    cooling = (0.01 / initial_temperature) ** (1.0 / max(budget - 1, 1))
    temperature = initial_temperature
    attempts = 0
    # The walk may revisit cached configurations without consuming budget;
    # the attempt bound keeps termination deterministic.
    while (
        len(evaluator.cache) < min(budget, len(evaluator.configs))
        and attempts < 20 * budget
    ):
        attempts += 1
        neighbours = _neighbours(current.config, evaluator)
        candidate_config = (
            rng.choice(neighbours) if neighbours else rng.choice(evaluator.configs)
        )
        candidate = evaluator.evaluate(candidate_config)
        if candidate.gflops > best.gflops:
            best = candidate
        delta = candidate.gflops - current.gflops
        scale = max(best.gflops * temperature, 1e-9)
        if delta >= 0 or rng.random() < pow(2.718281828, delta / scale):
            current = candidate
        temperature *= cooling
    return HeuristicOutcome(
        result=evaluator.result(),
        evaluations=len(evaluator.cache),
        budget=budget,
        space_size=len(evaluator.configs),
    )


def budgeted_tune(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    budget: int = 48,
    seed: int = 0,
    samples: int | None = None,
) -> HeuristicOutcome:
    """Degradation strategy for the tuning service: probe, then refine.

    Spends half the budget on uniform random probes of the meaningful
    space and the rest on greedy best-neighbour ascent from the best
    probe.  Cheaper than either :func:`random_search` (no refinement) or
    :func:`hill_climb` (no global view) at the same budget, and fully
    deterministic for a given ``seed`` — the property
    :class:`repro.service.TuningService` needs when it degrades a timed
    out or rejected request to a heuristic answer.
    """
    require_positive_int(budget, "budget")
    evaluator = _make_evaluator(device, setup, grid, samples)
    rng = RandomStreams(seed).python("budgeted-tune")
    ceiling = min(budget, len(evaluator.configs))

    n_probes = max(1, min(budget // 2, len(evaluator.configs)))
    for config in rng.sample(evaluator.configs, n_probes):
        evaluator.evaluate(config)

    current = max(evaluator.cache.values(), key=lambda s: s.gflops)
    improved = True
    while improved and len(evaluator.cache) < ceiling:
        improved = False
        best_neighbour = None
        for neighbour in _neighbours(current.config, evaluator):
            if len(evaluator.cache) >= ceiling:
                break
            sample = evaluator.evaluate(neighbour)
            if best_neighbour is None or sample.gflops > best_neighbour.gflops:
                best_neighbour = sample
        if best_neighbour is not None and best_neighbour.gflops > current.gflops:
            current = best_neighbour
            improved = True
    return HeuristicOutcome(
        result=evaluator.result(),
        evaluations=len(evaluator.cache),
        budget=budget,
        space_size=len(evaluator.configs),
    )


def hill_climb(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    budget: int = 50,
    seed: int = 0,
    samples: int | None = None,
) -> HeuristicOutcome:
    """Greedy best-neighbour ascent with random restarts."""
    require_positive_int(budget, "budget")
    evaluator = _make_evaluator(device, setup, grid, samples)
    rng = RandomStreams(seed).python("hill-climb")

    restarts = 0
    # Restarts may land on already-evaluated configurations without
    # consuming budget; the restart bound keeps termination deterministic.
    while (
        len(evaluator.cache) < min(budget, len(evaluator.configs))
        and restarts < 20 * budget
    ):
        restarts += 1
        current = rng.choice(evaluator.configs)
        current_sample = evaluator.evaluate(current)
        improved = True
        while improved and len(evaluator.cache) < budget:
            improved = False
            best_neighbour = None
            for neighbour in _neighbours(current_sample.config, evaluator):
                if len(evaluator.cache) >= budget:
                    break
                sample = evaluator.evaluate(neighbour)
                if (
                    best_neighbour is None
                    or sample.gflops > best_neighbour.gflops
                ):
                    best_neighbour = sample
            if (
                best_neighbour is not None
                and best_neighbour.gflops > current_sample.gflops
            ):
                current_sample = best_neighbour
                improved = True
    return HeuristicOutcome(
        result=evaluator.result(),
        evaluations=len(evaluator.cache),
        budget=budget,
        space_size=len(evaluator.configs),
    )
