"""Arithmetic-intensity analysis (paper Sec. III-A, Eqs. 2 and 3).

Dedispersion performs one FLOP per input element read, so without reuse::

    AI = 1 / (4 + eps) < 1/4            (Eq. 2)

where ``eps`` accounts for the delay-table reads and the output writes.
With perfect reuse, each input element could feed every DM, bounding::

    AI < 1 / (4 * (1/d + 1/s + 1/c))    (Eq. 3)

The paper's point — which :func:`analyze_reuse` quantifies for concrete
setups — is that Eq. 3 is unreachable in any realistic scenario: reuse
exists only where per-DM delay windows overlap, and the non-linear delay
function makes them diverge at low frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.astro.dispersion import delay_table
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.constants import BYTES_PER_SAMPLE
from repro.errors import ValidationError
from repro.utils.validation import require_positive_int


def ai_no_reuse_bound(epsilon: float = 0.0) -> float:
    """Eq. 2: the AI bound without data-reuse (< 1/4 FLOP/byte)."""
    if epsilon < 0:
        raise ValidationError("epsilon must be non-negative")
    return 1.0 / (BYTES_PER_SAMPLE + epsilon)


def ai_perfect_reuse_bound(n_dms: int, samples: int, channels: int) -> float:
    """Eq. 3: the AI bound with perfect data-reuse.

    Grows without bound as all three dimensions grow — the theoretical
    result the paper shows real hardware cannot approach.
    """
    require_positive_int(n_dms, "n_dms")
    require_positive_int(samples, "samples")
    require_positive_int(channels, "channels")
    return 1.0 / (
        BYTES_PER_SAMPLE * (1.0 / n_dms + 1.0 / samples + 1.0 / channels)
    )


def achieved_arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """Measured FLOP per byte for an executed/simulated kernel."""
    if bytes_moved <= 0:
        raise ValidationError("bytes_moved must be positive")
    return flops / bytes_moved


@dataclass(frozen=True)
class ReuseReport:
    """How much data-reuse an observational setup actually exposes."""

    setup_name: str
    n_dms: int
    samples: int
    channels: int
    #: Eq. 2 bound (no reuse).
    ai_lower_bound: float
    #: Eq. 3 bound (perfect reuse).
    ai_upper_bound: float
    #: AI achievable given the real per-channel window overlaps, assuming a
    #: kernel that shares loads perfectly within the full DM grid — a
    #: theoretical bound that still assumes unbounded on-chip storage.
    ai_exposed: float
    #: AI achievable with a realistic on-chip staging budget (32 KiB, the
    #: local-memory class of the paper's devices): the quantity that
    #: actually separates Apertif from LOFAR.
    ai_practical: float
    #: Mean input-element reuse multiplicity across channels (full union).
    mean_reuse: float
    #: Mean reuse achievable within the staging budget.
    practical_reuse: float
    #: Fraction of channels whose per-DM-step delay increment is below one
    #: sample (elements shared between adjacent DM trials).
    overlap_fraction: float

    def summary(self) -> str:
        """One-line rendering used by reports."""
        return (
            f"{self.setup_name} ({self.n_dms} DMs): AI in "
            f"[{self.ai_lower_bound:.3f}, {self.ai_upper_bound:.1f}] "
            f"FLOP/B, exposed {self.ai_exposed:.2f}, "
            f"practical {self.ai_practical:.2f} "
            f"(reuse {self.practical_reuse:.1f}x, "
            f"{self.overlap_fraction:.0%} channels overlap per step)"
        )


#: On-chip staging budget used for the "practical" AI: the 32 KiB
#: local-memory class of the paper's GPUs.
PRACTICAL_STAGING_BYTES: int = 32 * 1024

#: Reference sample-tile length for the practical-AI estimate.
PRACTICAL_TILE_SAMPLES: int = 2048


def analyze_reuse(
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int | None = None,
    staging_bytes: int = PRACTICAL_STAGING_BYTES,
) -> ReuseReport:
    """Quantify the data-reuse a (setup, DM grid) pair exposes.

    Two levels are reported.  The *exposed* AI assumes an ideal kernel that
    reads each input element exactly once per overlapping window union — a
    theoretical upper bound requiring unbounded on-chip storage.  The
    *practical* AI limits each channel's sharing window to a realistic
    on-chip staging budget: per channel, a DM tile can only grow while
    ``tile_t + delta * (tile_d - 1)`` samples fit the budget, where
    ``delta`` is the channel's per-DM-step delay increment.  This is the
    quantity that collapses for LOFAR (delta of hundreds of samples) and
    stays near-ideal for Apertif — the paper's Sec. III-A argument made
    concrete.
    """
    s = setup.samples_per_batch if samples is None else samples
    require_positive_int(s, "samples")
    table = delay_table(setup, grid.values)  # (d, c)
    flops = float(setup.total_flops(grid.n_dms, s))

    # --- exposed: union window per channel across the whole grid ---
    span = (table[-1] - table[0]).astype(np.float64)
    union_elements = float(np.sum(s + span))
    naive_elements = float(grid.n_dms) * s * setup.channels
    read_elements = min(union_elements, naive_elements)
    bytes_moved = (read_elements + grid.n_dms * s) * BYTES_PER_SAMPLE

    # --- practical: one staging-budget-limited DM tile for all channels ---
    # A kernel has a single tile shape; channels whose window overflows the
    # budget fall back to unshared reads.  Pick the tile depth maximising
    # the mean per-channel reuse.
    if grid.n_dms > 1:
        delta = span / (grid.n_dms - 1)  # per-step increment, samples
    else:
        delta = np.zeros_like(span)
    tile_t = float(min(s, PRACTICAL_TILE_SAMPLES))
    budget_elements = staging_bytes / BYTES_PER_SAMPLE

    def harmonic_reuse(reuse: np.ndarray) -> float:
        # Traffic-weighted aggregate: each channel contributes
        # naive/reuse_c bytes, so the effective reuse is the harmonic mean.
        return float(len(reuse) / np.sum(1.0 / reuse))

    best_reuse = np.ones_like(delta)
    tile_d = 1
    while tile_d <= grid.n_dms:
        windows = tile_t + delta * (tile_d - 1)
        reuse = np.where(
            windows <= budget_elements, tile_d * tile_t / windows, 1.0
        )
        if harmonic_reuse(reuse) > harmonic_reuse(best_reuse):
            best_reuse = reuse
        tile_d *= 2
    reuse_per_channel = best_reuse
    practical_read = naive_elements / harmonic_reuse(reuse_per_channel)
    practical_bytes = (practical_read + grid.n_dms * s) * BYTES_PER_SAMPLE

    if grid.n_dms > 1:
        step_increment = (table[1] - table[0]).astype(np.float64)
        overlap_fraction = float(np.mean(step_increment < 1.0))
    else:
        overlap_fraction = 1.0

    return ReuseReport(
        setup_name=setup.name,
        n_dms=grid.n_dms,
        samples=s,
        channels=setup.channels,
        ai_lower_bound=ai_no_reuse_bound(
            epsilon=BYTES_PER_SAMPLE / max(setup.channels, 1)
        ),
        ai_upper_bound=ai_perfect_reuse_bound(grid.n_dms, s, setup.channels),
        ai_exposed=achieved_arithmetic_intensity(flops, bytes_moved),
        ai_practical=achieved_arithmetic_intensity(flops, practical_bytes),
        mean_reuse=naive_elements / read_elements,
        practical_reuse=harmonic_reuse(reuse_per_channel),
        overlap_fraction=overlap_fraction,
    )
