"""Subband (two-step) dedispersion — the major algorithmic extension.

Brute-force dedispersion costs ``d * s * c`` operations.  The standard way
to cut that cost (Magro et al. 2011; later adopted by the paper's authors
in the AMBER pipeline) is a two-step decomposition:

**Step 1** — split the ``c`` channels into ``n_sub`` contiguous subbands
and dedisperse each subband *internally* for a coarse grid of ``d_c``
"subband DMs", aligning every channel to its subband's reference (top)
frequency.  Cost: ``d_c * s * c``.

**Step 2** — for every fine trial DM, take the intermediate series of the
*nearest* coarse DM and sum the ``n_sub`` subband series, shifting each by
the delay of its reference frequency at the fine DM.  Cost:
``d * s * n_sub``.

Total: ``s * (d_c * c + d * n_sub)`` versus ``s * d * c`` — a reduction
approaching ``c / n_sub`` when ``d_c << d``.  The price is a bounded
approximation error: within one subband the step-1 shift uses the coarse
DM instead of the fine one, smearing each channel by at most the
intra-subband delay span between neighbouring coarse DMs.

Functionally, subband dedispersion equals brute-force dedispersion with
the *effective* delay table

    delay_eff(dm, ch) = delay(dm_c, ch) - delay(dm_c, ref(ch))
                        + delay(dm, ref(ch))

where ``dm_c`` is the coarse DM assigned to ``dm`` and ``ref(ch)`` the
reference frequency of the channel's subband.  That identity is how the
implementation is tested, and it makes the error analysis exact:
``|delay_eff - delay| <= |delay(dm, ch) - delay(dm_c, ch)|`` within a
subband.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.astro.dispersion import delay_samples, delay_table
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import ValidationError
from repro.utils.intmath import ceil_div
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class SubbandPlan:
    """A two-step dedispersion decomposition.

    ``coarse_factor`` is the ratio between the fine and coarse DM steps:
    one coarse DM serves ``coarse_factor`` consecutive fine trials.
    """

    setup: ObservationSetup
    grid: DMTrialGrid
    n_subbands: int
    coarse_factor: int

    def __post_init__(self) -> None:
        require_positive_int(self.n_subbands, "n_subbands")
        require_positive_int(self.coarse_factor, "coarse_factor")
        if self.setup.channels % self.n_subbands:
            raise ValidationError(
                f"{self.n_subbands} subbands do not divide "
                f"{self.setup.channels} channels"
            )
        if self.grid.is_degenerate and self.coarse_factor != 1:
            raise ValidationError(
                "degenerate (0-step) grids cannot be coarsened"
            )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def channels_per_subband(self) -> int:
        """Channels in each subband."""
        return self.setup.channels // self.n_subbands

    @cached_property
    def coarse_grid(self) -> DMTrialGrid:
        """The step-1 grid: every ``coarse_factor``-th fine trial."""
        n_coarse = ceil_div(self.grid.n_dms, self.coarse_factor)
        return DMTrialGrid(
            n_dms=n_coarse,
            first=self.grid.first,
            step=self.grid.step * self.coarse_factor,
        )

    def coarse_index(self, fine_index: int) -> int:
        """The coarse trial serving fine trial ``fine_index``."""
        if not 0 <= fine_index < self.grid.n_dms:
            raise ValidationError(
                f"fine index {fine_index} outside grid of {self.grid.n_dms}"
            )
        return fine_index // self.coarse_factor

    @cached_property
    def subband_reference_frequencies(self) -> np.ndarray:
        """Reference (centre of top channel) frequency per subband, (n_sub,)."""
        freqs = self.setup.channel_frequencies
        tops = [
            float(freqs[(i + 1) * self.channels_per_subband - 1])
            for i in range(self.n_subbands)
        ]
        return np.asarray(tops)

    # ------------------------------------------------------------------
    # Delay tables
    # ------------------------------------------------------------------
    @cached_property
    def intra_subband_table(self) -> np.ndarray:
        """Step-1 shifts: (n_coarse, channels), relative to subband tops."""
        full = delay_table(self.setup, self.coarse_grid.values)
        return self._relative_to_subband_tops(full)

    def _relative_to_subband_tops(self, table: np.ndarray) -> np.ndarray:
        out = np.empty_like(table)
        w = self.channels_per_subband
        for i in range(self.n_subbands):
            sl = slice(i * w, (i + 1) * w)
            out[:, sl] = table[:, sl] - table[:, sl][:, -1:]
        return out

    @cached_property
    def subband_table(self) -> np.ndarray:
        """Step-2 shifts: (n_dms, n_subbands) at the reference frequencies."""
        ref = self.setup.reference_frequency
        shifts = delay_samples(
            self.subband_reference_frequencies[np.newaxis, :],
            ref,
            self.grid.values[:, np.newaxis],
            self.setup.samples_per_second,
        )
        return np.rint(shifts).astype(np.int64)

    @cached_property
    def effective_delay_table(self) -> np.ndarray:
        """The brute-force-equivalent table of this decomposition.

        ``effective[dm, ch] = intra[dm_c, ch] + subband[dm, sub(ch)]`` —
        used by tests (the two-step execution must match brute force with
        this exact table) and by :meth:`max_delay_error_samples`.
        """
        n_dms, c = self.grid.n_dms, self.setup.channels
        w = self.channels_per_subband
        eff = np.empty((n_dms, c), dtype=np.int64)
        for dm in range(n_dms):
            coarse = self.coarse_index(dm)
            intra = self.intra_subband_table[coarse]
            for sub in range(self.n_subbands):
                sl = slice(sub * w, (sub + 1) * w)
                eff[dm, sl] = intra[sl] + self.subband_table[dm, sub]
        return eff

    def max_delay_error_samples(self) -> int:
        """Worst-case shift error versus exact dedispersion (samples).

        This is the extra smearing the two-step approximation can add to
        any channel at any fine DM; choose ``coarse_factor`` and
        ``n_subbands`` so it stays within the pulse width you search for.
        """
        exact = delay_table(self.setup, self.grid.values)
        return int(np.abs(self.effective_delay_table - exact).max())

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def flops(self, samples: int | None = None) -> int:
        """Total FLOPs of the two-step decomposition."""
        s = self.setup.samples_per_batch if samples is None else samples
        step1 = self.coarse_grid.n_dms * s * self.setup.channels
        step2 = self.grid.n_dms * s * self.n_subbands
        return step1 + step2

    def flop_reduction(self, samples: int | None = None) -> float:
        """Brute-force FLOPs over two-step FLOPs (> 1 means cheaper)."""
        s = self.setup.samples_per_batch if samples is None else samples
        brute = self.grid.n_dms * s * self.setup.channels
        return brute / self.flops(s)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, input_data: np.ndarray, samples: int | None = None) -> np.ndarray:
        """Two-step dedispersion of one batch; returns ``(n_dms, samples)``.

        ``input_data`` must cover ``samples`` plus the grid's maximum
        delay, exactly like the brute-force kernels.
        """
        s = self.setup.samples_per_batch if samples is None else samples
        input_data = np.asarray(input_data)
        if input_data.ndim != 2 or input_data.shape[0] != self.setup.channels:
            raise ValidationError(
                f"input must have shape (channels={self.setup.channels}, t),"
                f" got {input_data.shape}"
            )
        needed = s + int(self.effective_delay_table.max(initial=0))
        if input_data.shape[1] < needed:
            raise ValidationError(
                f"input has {input_data.shape[1]} samples; needs {needed}"
            )

        # Step 1: per-subband internal dedispersion at coarse DMs.  Each
        # intermediate series keeps exactly the trailing samples the step-2
        # shifts of *its own* coarse block need — sizing it to the global
        # maximum would read past inputs sized for the effective table.
        w = self.channels_per_subband
        intra = self.intra_subband_table
        f = self.coarse_factor
        intermediate: list[list[np.ndarray]] = []
        for coarse in range(self.coarse_grid.n_dms):
            dm_lo = coarse * f
            dm_hi = min(dm_lo + f, self.grid.n_dms)
            per_subband: list[np.ndarray] = []
            for sub in range(self.n_subbands):
                max_shift = int(self.subband_table[dm_lo:dm_hi, sub].max())
                length = s + max_shift
                acc = np.zeros(length, dtype=np.float32)
                for local in range(w):
                    ch = sub * w + local
                    start = int(intra[coarse, ch])
                    acc += input_data[ch, start : start + length]
                per_subband.append(acc)
            intermediate.append(per_subband)

        # Step 2: per fine DM, shift-and-sum the subband series.
        out = np.zeros((self.grid.n_dms, s), dtype=np.float32)
        for dm in range(self.grid.n_dms):
            coarse = self.coarse_index(dm)
            row = out[dm]
            for sub in range(self.n_subbands):
                shift = int(self.subband_table[dm, sub])
                row += intermediate[coarse][sub][shift : shift + s]
        return out


def dedisperse_subband(
    input_data: np.ndarray,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_subbands: int,
    coarse_factor: int,
    samples: int | None = None,
) -> tuple[np.ndarray, SubbandPlan]:
    """One-call two-step dedispersion; returns ``(output, plan)``."""
    plan = SubbandPlan(
        setup=setup,
        grid=grid,
        n_subbands=n_subbands,
        coarse_factor=coarse_factor,
    )
    return plan.execute(input_data, samples=samples), plan
