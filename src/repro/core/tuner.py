"""The auto-tuner: exhaustive sweep and optimum selection.

For every meaningful configuration the tuner runs the performance model and
records the achieved GFLOP/s; "the optimal configuration is chosen as the
one that produces the highest number of single precision floating point
operations per second" (Sec. IV-A).  The complete sample population is kept
so downstream analysis can compute the statistics of the optimum (Figs.
8-10) and the best *fixed* configuration (Figs. 13-14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.constraints import is_meaningful
from repro.core.space import TuningSpace
from repro.errors import TuningError
from repro.hardware.device import DeviceSpec
from repro.hardware.metrics import KernelMetrics
from repro.hardware.model import PerformanceModel
from repro.obs import get_registry, span


@dataclass(frozen=True)
class ConfigurationSample:
    """One evaluated point of the optimisation space."""

    config: KernelConfiguration
    gflops: float
    metrics: KernelMetrics


@dataclass(frozen=True)
class TuningResult:
    """Outcome of one sweep: the optimum plus the whole population."""

    device: DeviceSpec
    setup: ObservationSetup
    grid: DMTrialGrid
    samples: tuple[ConfigurationSample, ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise TuningError(
                f"no meaningful configurations for {self.device.name}/"
                f"{self.setup.name}/{self.grid.n_dms} DMs"
            )

    @property
    def best(self) -> ConfigurationSample:
        """The optimum: highest GFLOP/s."""
        return max(self.samples, key=lambda s: s.gflops)

    @property
    def population_gflops(self) -> np.ndarray:
        """All sampled GFLOP/s values, shape (n_samples,)."""
        return np.asarray([s.gflops for s in self.samples], dtype=np.float64)

    @property
    def n_configurations(self) -> int:
        """Size of the evaluated optimisation space."""
        return len(self.samples)

    def find(self, config: KernelConfiguration) -> ConfigurationSample | None:
        """The sample for ``config`` if it was part of this sweep."""
        for sample in self.samples:
            if sample.config == config:
                return sample
        return None

    def rank_of_best(self) -> int:
        """Sanity helper: 1 if the optimum is unique, ties counted."""
        best = self.best.gflops
        return int(np.sum(self.population_gflops >= best))

    def to_rows(self) -> list[tuple]:
        """The full sweep as plottable rows, fastest first.

        Columns: wt, wd, et, ed, work-items, accumulators, GFLOP/s, bound,
        reuse, occupancy — everything an external analysis of the
        optimisation space needs (e.g. re-plotting Fig. 10).
        """
        ordered = sorted(self.samples, key=lambda s: -s.gflops)
        return [
            (
                *sample.config.as_tuple(),
                sample.config.work_items_per_group,
                sample.config.accumulators,
                round(sample.gflops, 3),
                sample.metrics.bound.value,
                round(sample.metrics.reuse_factor, 2),
                round(sample.metrics.occupancy, 3),
            )
            for sample in ordered
        ]

    #: Column names matching :meth:`to_rows`.
    ROW_HEADERS: tuple[str, ...] = (
        "wt", "wd", "et", "ed", "work_items", "accumulators",
        "gflops", "bound", "reuse", "occupancy",
    )


class AutoTuner:
    """Sweeps the meaningful configuration space of one problem instance."""

    def __init__(
        self,
        device: DeviceSpec,
        setup: ObservationSetup,
        space_kwargs: dict | None = None,
    ):
        self.device = device
        self.setup = setup
        self.space_kwargs = dict(space_kwargs or {})

    def space(
        self,
        grid: DMTrialGrid,
        samples: int | None = None,
        predicate=None,
        limit: int | None = None,
    ) -> TuningSpace:
        """The tuning space this tuner would sweep for ``grid``.

        ``predicate`` and ``limit`` are forwarded to
        :class:`~repro.core.space.TuningSpace` so callers (search
        strategies) can enumerate the meaningful set lazily — filtered
        and truncated during generation instead of after materialising
        the full list.
        """
        s = self.setup.samples_per_batch if samples is None else samples
        kwargs = dict(self.space_kwargs)
        if predicate is not None:
            kwargs["predicate"] = predicate
        if limit is not None:
            kwargs["limit"] = limit
        return TuningSpace(
            device=self.device,
            setup=self.setup,
            grid=grid,
            samples=s,
            **kwargs,
        )

    def tune(
        self,
        grid: DMTrialGrid,
        samples: int | None = None,
        candidates: Iterable[KernelConfiguration] | None = None,
    ) -> TuningResult:
        """Evaluate every meaningful configuration and return the sweep.

        With ``candidates`` the sweep is restricted to the given
        configurations (duplicates dropped, non-meaningful ones filtered
        out) instead of the full enumerated space — the hook warm-start
        tuning uses to sweep a pruned neighbourhood of a known optimum.
        """
        s = self.setup.samples_per_batch if samples is None else samples
        with span(
            "tuner.sweep",
            device=self.device.name,
            setup=self.setup.name,
            n_dms=grid.n_dms,
        ) as sweep_span:
            if candidates is None:
                configs = self.space(grid, s).meaningful()
            else:
                seen: set[KernelConfiguration] = set()
                configs = []
                for c in candidates:
                    if c in seen:
                        continue
                    seen.add(c)
                    if is_meaningful(c, self.device, self.setup, grid, s):
                        configs.append(c)
            if not configs:
                raise TuningError(
                    f"search space is empty for {self.device.name}/"
                    f"{self.setup.name}/{grid.n_dms} DMs"
                )
            model = PerformanceModel(self.device, self.setup, grid)
            evaluated = tuple(
                ConfigurationSample(
                    config=c,
                    metrics=(m := model.simulate(c, samples=s, validate=False)),
                    gflops=m.gflops,
                )
                for c in configs
            )
            result = TuningResult(
                device=self.device, setup=self.setup, grid=grid,
                samples=evaluated,
            )
            sweep_span.attributes["n_configurations"] = len(evaluated)
            registry = get_registry()
            labels = {"device": self.device.name, "setup": self.setup.name}
            registry.counter("repro_tuner_sweeps_total", **labels).inc()
            registry.counter(
                "repro_tuner_configs_evaluated_total", **labels
            ).inc(len(evaluated))
            registry.gauge("repro_tuner_best_gflops", **labels).set(
                result.best.gflops
            )
            return result

    def tune_instances(
        self,
        n_dms_list: list[int] | tuple[int, ...],
        dm_first: float = 0.0,
        dm_step: float = 0.25,
    ) -> dict[int, TuningResult]:
        """Tune a series of input instances (the paper's 2..4096 sweep)."""
        results: dict[int, TuningResult] = {}
        for n_dms in n_dms_list:
            grid = DMTrialGrid(n_dms=n_dms, first=dm_first, step=dm_step)
            results[n_dms] = self.tune(grid)
        return results
