"""Statistics of the optimisation space (paper Sec. V-B, Figs. 8-10).

The paper quantifies how special the tuned optimum is: its signal-to-noise
ratio — "the distance from the average in terms of units of standard
deviation" — and, via Chebyshev's inequality, an upper bound on the
probability of finding a configuration at least that good by guessing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


def optimum_snr(population_gflops: np.ndarray) -> float:
    """SNR of the optimum: ``(max - mean) / std`` of the population."""
    population = np.asarray(population_gflops, dtype=np.float64)
    if population.size < 2:
        raise ValidationError("need at least two samples for an SNR")
    std = float(np.std(population))
    if std == 0.0:
        return 0.0
    # Clamp at zero: for numerically constant populations float rounding
    # can place the mean marginally above the maximum.
    return max(0.0, float((population.max() - population.mean()) / std))


def chebyshev_probability_bound(snr: float) -> float:
    """Chebyshev bound on guessing a configuration >= ``snr`` sigmas out.

    ``P(|X - mu| >= k sigma) <= 1/k^2`` — the paper's "in the best case
    scenario this probability is less than 39%, while in the worst case it
    is less than 5%" corresponds to SNRs of ~1.6 and ~4.5.
    """
    if snr <= 0 or snr * snr == 0.0:  # guard denormal underflow
        return 1.0
    return min(1.0, 1.0 / (snr * snr))


@dataclass(frozen=True)
class OptimumStatistics:
    """Full statistical characterisation of one tuning sweep."""

    n_configurations: int
    best_gflops: float
    mean_gflops: float
    std_gflops: float
    median_gflops: float
    snr: float
    chebyshev_bound: float

    @classmethod
    def from_population(cls, population_gflops: np.ndarray) -> "OptimumStatistics":
        """Compute every statistic from the sweep's GFLOP/s population."""
        population = np.asarray(population_gflops, dtype=np.float64)
        snr = optimum_snr(population)
        return cls(
            n_configurations=int(population.size),
            best_gflops=float(population.max()),
            mean_gflops=float(population.mean()),
            std_gflops=float(population.std()),
            median_gflops=float(np.median(population)),
            snr=snr,
            chebyshev_bound=chebyshev_probability_bound(snr),
        )

    def summary(self) -> str:
        """One-line rendering used by reports."""
        return (
            f"optimum {self.best_gflops:.1f} GFLOP/s over "
            f"{self.n_configurations} configs "
            f"(mean {self.mean_gflops:.1f}, SNR {self.snr:.2f}, "
            f"P(guess) <= {self.chebyshev_bound:.0%})"
        )


def performance_histogram(
    population_gflops: np.ndarray,
    n_bins: int = 40,
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of configurations over performance (the Fig. 10 shape).

    Returns ``(counts, bin_edges)`` à la :func:`numpy.histogram`, with bins
    spanning [0, max] so the optimum's isolation from the bulk is visible.
    """
    population = np.asarray(population_gflops, dtype=np.float64)
    if population.size == 0:
        raise ValidationError("population must be non-empty")
    if n_bins <= 0:
        raise ValidationError("n_bins must be positive")
    return np.histogram(population, bins=n_bins, range=(0.0, float(population.max())))
