"""The paper's contribution: the tunable dedispersion kernel and auto-tuner."""

from repro.core.config import KernelConfiguration
from repro.core.constraints import is_meaningful, explain_constraints
from repro.core.space import TuningSpace
from repro.core.tuner import AutoTuner, TuningResult, ConfigurationSample
from repro.core.plan import DedispersionPlan
from repro.core.dedisperse import dedisperse, dedisperse_reference
from repro.core.ai import (
    ai_no_reuse_bound,
    ai_perfect_reuse_bound,
    achieved_arithmetic_intensity,
    ReuseReport,
    analyze_reuse,
)
from repro.core.stats import (
    optimum_snr,
    chebyshev_probability_bound,
    performance_histogram,
    OptimumStatistics,
)
from repro.core.fixed import best_fixed_configuration, FixedConfigResult
from repro.core.subband import SubbandPlan, dedisperse_subband
from repro.core.persistence import load_sweep, model_fingerprint, save_sweep
from repro.core.heuristics import (
    HeuristicOutcome,
    budgeted_tune,
    hill_climb,
    random_search,
    simulated_annealing,
)

__all__ = [
    "KernelConfiguration",
    "is_meaningful",
    "explain_constraints",
    "TuningSpace",
    "AutoTuner",
    "TuningResult",
    "ConfigurationSample",
    "DedispersionPlan",
    "dedisperse",
    "dedisperse_reference",
    "ai_no_reuse_bound",
    "ai_perfect_reuse_bound",
    "achieved_arithmetic_intensity",
    "ReuseReport",
    "analyze_reuse",
    "optimum_snr",
    "chebyshev_probability_bound",
    "performance_histogram",
    "OptimumStatistics",
    "best_fixed_configuration",
    "FixedConfigResult",
    "SubbandPlan",
    "dedisperse_subband",
    "HeuristicOutcome",
    "budgeted_tune",
    "hill_climb",
    "random_search",
    "simulated_annealing",
    "load_sweep",
    "model_fingerprint",
    "save_sweep",
]
