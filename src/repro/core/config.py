"""The four user-controlled parameters of the dedispersion kernel.

Sec. III-B: "The general structure of the algorithm can be specifically
instantiated by configuring four user-controlled parameters.  Two parameters
are used to control the number of work-items per work-group in the time and
DM dimensions, regulating the amount of available parallelism.  The other
two parameters are used to control the number of elements a single
work-item computes, also in the time and DM dimensions, regulating the
amount of work per work-item."

We name them:

* ``work_items_time``  (wt) — work-items per work-group, time dimension.
* ``work_items_dm``    (wd) — work-items per work-group, DM dimension.
* ``elements_time``    (et) — output samples each work-item computes.
* ``elements_dm``      (ed) — trial DMs each work-item accumulates.

A work-group therefore computes a tile of ``wd*ed`` DMs by ``wt*et``
samples; the paper's Figs. 2-3 plot ``wt*wd`` ("work-items") and Figs. 4-5
plot ``et*ed`` ("registers", the accumulators each work-item keeps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive_int

#: Registers a work-item needs beyond its ``et*ed`` accumulators: loop
#: counters, base addresses, the staged sample.  Used by the occupancy
#: model when translating a configuration into register pressure.
BASE_REGISTERS_PER_ITEM: int = 8


@dataclass(frozen=True, order=True)
class KernelConfiguration:
    """One instance of the run-time-generated dedispersion kernel."""

    work_items_time: int
    work_items_dm: int
    elements_time: int
    elements_dm: int

    def __post_init__(self) -> None:
        require_positive_int(self.work_items_time, "work_items_time")
        require_positive_int(self.work_items_dm, "work_items_dm")
        require_positive_int(self.elements_time, "elements_time")
        require_positive_int(self.elements_dm, "elements_dm")

    # ------------------------------------------------------------------
    # Derived tile geometry
    # ------------------------------------------------------------------
    @property
    def work_items_per_group(self) -> int:
        """Total work-items per work-group (the Figs. 2-3 quantity)."""
        return self.work_items_time * self.work_items_dm

    @property
    def accumulators(self) -> int:
        """Per-work-item accumulator registers (the Figs. 4-5 quantity)."""
        return self.elements_time * self.elements_dm

    @property
    def registers_per_item(self) -> int:
        """Estimated total register pressure per work-item."""
        return self.accumulators + BASE_REGISTERS_PER_ITEM

    @property
    def tile_samples(self) -> int:
        """Output samples computed by one work-group."""
        return self.work_items_time * self.elements_time

    @property
    def tile_dms(self) -> int:
        """Trial DMs computed by one work-group."""
        return self.work_items_dm * self.elements_dm

    def work_groups(self, n_dms: int, samples: int) -> int:
        """Number of work-groups in the NDRange for a given problem size.

        Meaningful configurations tile the problem exactly (see
        :mod:`repro.core.constraints`); for other sizes the count rounds up,
        matching how an OpenCL runtime would pad the NDRange.
        """
        from repro.utils.intmath import ceil_div

        return ceil_div(n_dms, self.tile_dms) * ceil_div(samples, self.tile_samples)

    def describe(self) -> str:
        """Compact ``wt x wd (et x ed)`` rendering used in reports."""
        return (
            f"{self.work_items_time}x{self.work_items_dm} work-items, "
            f"{self.elements_time}x{self.elements_dm} elements"
        )

    def as_tuple(self) -> tuple[int, int, int, int]:
        """(wt, wd, et, ed) — the paper's four parameters."""
        return (
            self.work_items_time,
            self.work_items_dm,
            self.elements_time,
            self.elements_dm,
        )
