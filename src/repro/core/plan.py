"""Dedispersion plans: tune once, execute many times.

Real-time pipelines dedisperse the same (setup, DM grid) shape every second
for hours, so the tuning sweep is paid once up front and the chosen kernel
is reused — the FFTW-style plan/execute split.  A plan binds:

* an observational setup and DM-trial grid (the problem),
* a device and its tuned :class:`KernelConfiguration` (the solution),
* the generated kernel and precomputed delay table (the artefacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.astro.dispersion import delay_table
from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.constraints import validate_configuration
from repro.core.tuner import AutoTuner
from repro.hardware.device import DeviceSpec
from repro.hardware.metrics import KernelMetrics
from repro.hardware.model import PerformanceModel
from repro.opencl_sim.codegen import build_kernel
from repro.opencl_sim.kernel import DedispersionKernel


@dataclass(frozen=True)
class DedispersionPlan:
    """A tuned, executable dedispersion pipeline stage."""

    setup: ObservationSetup
    grid: DMTrialGrid
    device: DeviceSpec
    config: KernelConfiguration
    samples: int
    kernel: DedispersionKernel = field(repr=False)
    delays: np.ndarray = field(repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        device: DeviceSpec,
        config: KernelConfiguration | None = None,
        samples: int | None = None,
        space_kwargs: dict | None = None,
    ) -> "DedispersionPlan":
        """Build a plan, auto-tuning when no configuration is given."""
        s = setup.samples_per_batch if samples is None else samples
        if config is None:
            tuner = AutoTuner(device, setup, space_kwargs=space_kwargs)
            config = tuner.tune(grid, samples=s).best.config
        else:
            validate_configuration(config, device, setup, grid, s)
        kernel = build_kernel(config, setup.channels, s)
        delays = delay_table(setup, grid.values)
        return cls(
            setup=setup,
            grid=grid,
            device=device,
            config=config,
            samples=s,
            kernel=kernel,
            delays=delays,
        )

    # ------------------------------------------------------------------
    # Execution and prediction
    # ------------------------------------------------------------------
    @property
    def required_input_samples(self) -> int:
        """Minimum input length: batch plus the maximum delay."""
        return self.samples + int(self.delays.max(initial=0))

    def execute(
        self,
        input_data: np.ndarray,
        out: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Deprecated: route plan execution through :mod:`repro.run`.

        Same contract as before — dedisperse one batch, returning the
        ``(n_dms, samples)`` matrix — but the blessed spelling is now
        ``repro.run.execute(ExecutionRequest(data=input_data,
        plan=plan))``.  Warns once per process.
        """
        from repro.utils.deprecation import warn_legacy_execute

        warn_legacy_execute(
            "DedispersionPlan.execute",
            "repro.run.execute(ExecutionRequest(data=input_data, plan=plan))",
        )
        from repro.run import ExecutionRequest, execute

        return execute(
            ExecutionRequest(
                data=input_data, plan=self, out=out, backend=backend
            )
        ).output

    def enqueue(self, queue, input_buffer, output_buffer):
        """Run the kernel through a mini-runtime command queue.

        ``queue`` is a :class:`repro.opencl_sim.CommandQueue`;
        ``input_buffer``/``output_buffer`` are device
        :class:`~repro.opencl_sim.runtime.Buffer` objects of shapes
        ``(channels, >= required_input_samples)`` and
        ``(n_dms, samples)``.  The profiling event carries both the wall
        clock of the functional execution and the model-predicted device
        time — the host-code shape of the paper's measurement loop.
        """
        simulated = self.predict().seconds

        def launch() -> None:
            self.kernel._execute(
                input_buffer.array, self.delays, out=output_buffer.array
            )

        return queue.enqueue("dedisperse", launch, simulated_seconds=simulated)

    def predict(self) -> KernelMetrics:
        """Model-predicted metrics for one batch on the plan's device."""
        model = PerformanceModel(self.device, self.setup, self.grid)
        return model.simulate(self.config, samples=self.samples, validate=False)

    def is_realtime(self) -> bool:
        """Whether the predicted rate dedisperses 1 s of data in < 1 s.

        Uses the full one-second workload regardless of the plan's batch
        length, matching the real-time lines of Figs. 6-7.
        """
        predicted = self.predict().gflops
        needed = self.setup.realtime_gflops(self.grid.n_dms)
        return predicted >= needed

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        metrics = self.predict()
        return "\n".join(
            [
                f"plan: {self.setup.name}, {self.grid.n_dms} DMs "
                f"(step {self.grid.step}), {self.samples} samples/batch",
                f"device: {self.device.name}",
                f"configuration: {self.config.describe()}",
                f"predicted: {metrics.gflops:.1f} GFLOP/s "
                f"({metrics.bound.value}-bound), "
                f"real-time: {'yes' if self.is_realtime() else 'NO'}",
            ]
        )
