"""Best-fixed-configuration search (paper Sec. V-D, Figs. 13-14).

The paper compares the auto-tuned optimum against "the best possible
manually optimized version": a single configuration per (device, setup)
that, summed over all input instances, maximises the achieved GFLOP/s.
The speedup of the per-instance optimum over that fixed configuration is
the headline measure of what auto-tuning buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import KernelConfiguration
from repro.core.tuner import TuningResult
from repro.errors import TuningError


@dataclass(frozen=True)
class FixedConfigResult:
    """The best fixed configuration and its per-instance performance."""

    config: KernelConfiguration
    #: Summed GFLOP/s across all instances where the config is meaningful.
    total_gflops: float
    #: GFLOP/s per instance (keyed by n_dms); missing where not meaningful.
    per_instance_gflops: dict[int, float]

    def speedup_of_tuned(self, tuned: dict[int, float]) -> dict[int, float]:
        """Per-instance speedup of the tuned optimum over this fixed config.

        Instances where the fixed configuration is not meaningful (it cannot
        run at all) are reported as ``inf`` — the tuned version wins by
        default, as on real hardware the fixed binary would simply fail.
        """
        speedups: dict[int, float] = {}
        for n_dms, tuned_gflops in tuned.items():
            fixed = self.per_instance_gflops.get(n_dms)
            speedups[n_dms] = (
                tuned_gflops / fixed if fixed and fixed > 0 else float("inf")
            )
        return speedups


def best_fixed_configuration(
    sweeps: dict[int, TuningResult],
) -> FixedConfigResult:
    """Find the fixed configuration maximising summed GFLOP/s.

    ``sweeps`` maps input-instance size (n_dms) to its full tuning sweep;
    only configurations meaningful on *every* instance qualify (a fixed
    binary must run everywhere), falling back to best-total otherwise.
    """
    if not sweeps:
        raise TuningError("no sweeps supplied")
    totals: dict[KernelConfiguration, float] = {}
    per_config_instances: dict[KernelConfiguration, dict[int, float]] = {}
    for n_dms, result in sweeps.items():
        for sample in result.samples:
            totals[sample.config] = totals.get(sample.config, 0.0) + sample.gflops
            per_config_instances.setdefault(sample.config, {})[n_dms] = sample.gflops

    n_instances = len(sweeps)
    universal = {
        cfg: total
        for cfg, total in totals.items()
        if len(per_config_instances[cfg]) == n_instances
    }
    pool = universal or totals
    best_config = max(pool, key=pool.__getitem__)
    return FixedConfigResult(
        config=best_config,
        total_gflops=pool[best_config],
        per_instance_gflops=per_config_instances[best_config],
    )
