"""Meaningful-configuration rules.

Sec. IV-A: "A configuration is considered meaningful if it fulfills all the
constraints posed by a specific platform, setup and input instance."  The
constraints, in the order they are checked:

1. **Work-group size** — ``wt*wd`` must not exceed the device limit and
   must be a multiple of the device's SIMD execution width (a partially
   filled wavefront wastes lanes deterministically).
2. **Registers** — accumulators plus bookkeeping must fit the per-work-item
   register budget the ISA/compiler allows.
3. **Exact tiling** — the work-group tile must divide the input instance in
   both dimensions (``tile_t | samples`` and ``tile_d | n_dms``); the
   run-time code generator only emits kernels without remainder handling,
   as the paper's does.
4. **Residency** — at least one work-group must fit on a compute unit
   (registers, local-memory staging, work-item slots).
"""

from __future__ import annotations

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.errors import ConfigurationError
from repro.hardware.device import DeviceSpec


def _check(
    config: KernelConfiguration,
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int,
) -> list[str]:
    """All violated constraints, as human-readable strings."""
    problems: list[str] = []
    wi = config.work_items_per_group
    if wi > device.max_work_group_size:
        problems.append(
            f"{wi} work-items/work-group exceed {device.name}'s "
            f"limit of {device.max_work_group_size}"
        )
    if wi % device.wavefront:
        problems.append(
            f"{wi} work-items/work-group is not a multiple of "
            f"{device.name}'s execution width {device.wavefront}"
        )
    if config.registers_per_item > device.max_registers_per_item:
        problems.append(
            f"{config.registers_per_item} registers/work-item exceed "
            f"{device.name}'s limit of {device.max_registers_per_item}"
        )
    if samples % config.tile_samples:
        problems.append(
            f"tile of {config.tile_samples} samples does not divide "
            f"the {samples}-sample batch"
        )
    if grid.n_dms % config.tile_dms:
        problems.append(
            f"tile of {config.tile_dms} DMs does not divide "
            f"the {grid.n_dms}-DM instance"
        )
    if not problems:
        # Residency check only makes sense for a geometrically valid config.
        from repro.hardware.occupancy import OccupancyCalculator

        try:
            OccupancyCalculator(device).calculate(
                config, staging_window=config.tile_samples
            )
        except ConfigurationError as exc:
            problems.append(str(exc))
    return problems


def validate_configuration(
    config: KernelConfiguration,
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int | None = None,
) -> None:
    """Raise :class:`ConfigurationError` if ``config`` is not meaningful."""
    s = setup.samples_per_batch if samples is None else samples
    problems = _check(config, device, setup, grid, s)
    if problems:
        raise ConfigurationError(
            f"configuration {config.describe()} is not meaningful for "
            f"{device.name}/{setup.name}/{grid.n_dms} DMs: "
            + "; ".join(problems)
        )


def is_meaningful(
    config: KernelConfiguration,
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int | None = None,
) -> bool:
    """Whether ``config`` satisfies every constraint (Sec. IV-A)."""
    s = setup.samples_per_batch if samples is None else samples
    return not _check(config, device, setup, grid, s)


def explain_constraints(
    config: KernelConfiguration,
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    samples: int | None = None,
) -> list[str]:
    """The list of violated constraints (empty when meaningful)."""
    s = setup.samples_per_batch if samples is None else samples
    return _check(config, device, setup, grid, s)
