"""Enumeration of the tuning search space.

The tuner evaluates "every meaningful combination of the four parameters"
(Sec. IV-A).  The raw cross-product is enormous, so — like the paper's
tuner — we enumerate only geometrically sensible candidates and let the
constraint checker prune the rest:

* ``work_items_time`` ranges over divisors of the batch length (so a row of
  work-items can tile the time dimension exactly), clamped to the device's
  work-group limit.  This is why the paper's optima include values such as
  250 and 1,000 rather than only powers of two.
* ``elements_time`` ranges over divisors of the remaining per-row samples,
  capped by ``max_elements_time``.
* ``work_items_dm`` and ``elements_dm`` range over powers of two so that
  DM tiles divide the power-of-two input instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.constraints import is_meaningful
from repro.hardware.device import DeviceSpec
from repro.utils.intmath import divisors, powers_of_two
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class TuningSpace:
    """Candidate generator for one (device, setup, instance) combination.

    ``max_elements_time`` / ``max_elements_dm`` bound the per-work-item
    workload; the defaults cover the paper's observed optima (et up to 32,
    ed up to 8) with headroom.

    ``predicate`` and ``limit`` are the lazy filtering hooks search
    strategies use: a predicate restricts enumeration to configurations
    it accepts, and a limit stops :meth:`iter_meaningful` after that many
    yields — without ever materialising the full candidate list.
    """

    device: DeviceSpec
    setup: ObservationSetup
    grid: DMTrialGrid
    samples: int = 0  # defaults to the setup batch
    max_elements_time: int = 32
    max_elements_dm: int = 8
    max_work_items_dm: int = 64
    predicate: Callable[[KernelConfiguration], bool] | None = None
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.samples == 0:
            object.__setattr__(self, "samples", self.setup.samples_per_batch)
        require_positive_int(self.samples, "samples")
        require_positive_int(self.max_elements_time, "max_elements_time")
        require_positive_int(self.max_elements_dm, "max_elements_dm")
        require_positive_int(self.max_work_items_dm, "max_work_items_dm")
        if self.limit is not None:
            require_positive_int(self.limit, "limit")

    # ------------------------------------------------------------------
    def _work_items_time_candidates(self) -> list[int]:
        limit = self.device.max_work_group_size
        return [d for d in divisors(self.samples) if d <= limit]

    def _elements_time_candidates(self, wt: int) -> list[int]:
        per_row = self.samples // wt
        return [d for d in divisors(per_row) if d <= self.max_elements_time]

    def _dm_candidates(self) -> list[tuple[int, int]]:
        pairs: list[tuple[int, int]] = []
        for wd in powers_of_two(1, min(self.max_work_items_dm, self.grid.n_dms)):
            for ed in powers_of_two(1, self.max_elements_dm):
                if wd * ed <= self.grid.n_dms:
                    pairs.append((wd, ed))
        return pairs

    # ------------------------------------------------------------------
    def candidates(self) -> Iterator[KernelConfiguration]:
        """All geometric candidates (not yet constraint-filtered)."""
        dm_pairs = self._dm_candidates()
        for wt in self._work_items_time_candidates():
            ets = self._elements_time_candidates(wt)
            for wd, ed in dm_pairs:
                if wt * wd > self.device.max_work_group_size:
                    continue
                for et in ets:
                    yield KernelConfiguration(
                        work_items_time=wt,
                        work_items_dm=wd,
                        elements_time=et,
                        elements_dm=ed,
                    )

    def iter_meaningful(self) -> Iterator[KernelConfiguration]:
        """Meaningful configurations, lazily, honouring the filter hooks.

        Yields candidates that pass the constraint checker and the
        optional ``predicate``, stopping after ``limit`` yields — the
        enumeration a strategy can abandon early without paying for the
        rest of the space.
        """
        yielded = 0
        for c in self.candidates():
            if self.limit is not None and yielded >= self.limit:
                return
            if self.predicate is not None and not self.predicate(c):
                continue
            if is_meaningful(
                c, self.device, self.setup, self.grid, self.samples
            ):
                yielded += 1
                yield c

    def meaningful(self) -> list[KernelConfiguration]:
        """All meaningful configurations for this (device, setup, instance)."""
        return list(self.iter_meaningful())

    def size_estimate(self) -> int:
        """Number of geometric candidates (upper bound on sweep size)."""
        return sum(1 for _ in self.candidates())
