"""Fault injection: the failure model the scheduler must survive.

Real-time survey backends lose nodes and suffer per-node throughput
variance as routine events (Sclocco et al. 2016, Magro et al. 2011), so
the execution engine is exercised under a seeded, reproducible fault
model with three ingredients:

* **crashes** — a device dies permanently at a drawn time; its queued
  and running work must be re-packed onto survivors;
* **transient errors** — an attempt fails partway with some probability
  and is retried with exponential backoff;
* **stragglers** — a device runs slower by a constant factor, the case
  work stealing exists for.

Every draw comes from :class:`repro.utils.rng.RandomStreams` (never the
bare :mod:`random` module — enforced by a unit test), and per-attempt
draws are *order-independent*: whether attempt 2 of shard X fails is a
pure function of ``(seed, worker, shard, attempt)``, so the ledger is
identical across scheduler implementations with different event orders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.utils.rng import RandomStreams
from repro.utils.validation import require_in_range, require_non_negative


@dataclass(frozen=True)
class FaultProfile:
    """What goes wrong during a run, statistically.

    ``crashes`` devices die at ``crash_fraction`` of the fault-free
    makespan estimate; ``stragglers`` devices run ``slowdown`` times
    slower; every attempt fails with probability ``transient_rate``.
    """

    crashes: int = 0
    crash_fraction: float = 0.35
    transient_rate: float = 0.0
    stragglers: int = 0
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.crashes, "crashes")
        require_non_negative(self.stragglers, "stragglers")
        require_in_range(self.crash_fraction, 0.0, 1.0, "crash_fraction")
        require_in_range(self.transient_rate, 0.0, 1.0, "transient_rate")
        if self.slowdown < 1.0:
            raise SchedulerError(
                f"slowdown must be >= 1 (a factor), got {self.slowdown}"
            )

    @property
    def is_benign(self) -> bool:
        """True when the profile injects nothing."""
        return (
            self.crashes == 0
            and self.stragglers == 0
            and self.transient_rate == 0.0
            and self.slowdown == 1.0
        )

    @classmethod
    def none(cls) -> "FaultProfile":
        """The fault-free profile."""
        return cls()

    @classmethod
    def default_injection(cls) -> "FaultProfile":
        """The ``repro sched --inject`` scenario: one crash, one 4x
        straggler, a 5% transient error rate."""
        return cls(
            crashes=1, crash_fraction=0.35,
            transient_rate=0.05, stragglers=1, slowdown=4.0,
        )

    def as_dict(self) -> dict:
        """JSON-ready rendering (recorded in the run ledger)."""
        return {
            "crashes": self.crashes,
            "crash_fraction": self.crash_fraction,
            "transient_rate": self.transient_rate,
            "stragglers": self.stragglers,
            "slowdown": self.slowdown,
        }


class FaultInjector:
    """Concrete, seeded fault assignments for one run.

    Crash victims and stragglers are drawn once from named child streams
    of the run's :class:`RandomStreams`; transient failures are queried
    per attempt through order-independent draws.
    """

    def __init__(
        self,
        profile: FaultProfile,
        streams: RandomStreams,
        worker_ids: tuple[str, ...],
        horizon_s: float,
    ):
        if len(set(worker_ids)) != len(worker_ids):
            raise SchedulerError("worker ids must be unique")
        if profile.crashes > len(worker_ids):
            raise SchedulerError(
                f"cannot crash {profile.crashes} of {len(worker_ids)} workers"
            )
        require_non_negative(horizon_s, "horizon_s")
        self.profile = profile
        self._streams = streams
        ordered = tuple(sorted(worker_ids))

        crash_rng = streams.numpy("faults.crash")
        victims = (
            tuple(
                sorted(
                    crash_rng.choice(
                        len(ordered), size=profile.crashes, replace=False
                    ).tolist()
                )
            )
            if profile.crashes
            else ()
        )
        self.crash_times: dict[str, float] = {
            ordered[i]: horizon_s * profile.crash_fraction for i in victims
        }

        # Stragglers are drawn among the survivors when possible, so a
        # tiny fleet does not waste its slowdown on a machine that dies.
        survivors = [
            i for i in range(len(ordered)) if ordered[i] not in self.crash_times
        ]
        pool = survivors if len(survivors) >= profile.stragglers else list(
            range(len(ordered))
        )
        straggle_rng = streams.numpy("faults.straggle")
        chosen = (
            tuple(
                sorted(
                    straggle_rng.choice(
                        len(pool), size=min(profile.stragglers, len(pool)),
                        replace=False,
                    ).tolist()
                )
            )
            if profile.stragglers
            else ()
        )
        self.slowdowns: dict[str, float] = {
            ordered[pool[i]]: profile.slowdown for i in chosen
        }

    def crash_time(self, worker_id: str) -> float | None:
        """When ``worker_id`` dies, or ``None`` if it survives the run."""
        return self.crash_times.get(worker_id)

    def slowdown_for(self, worker_id: str) -> float:
        """The service-time multiplier of ``worker_id`` (1.0 = nominal)."""
        return self.slowdowns.get(worker_id, 1.0)

    def transient_fails(self, worker_id: str, shard_id: str, attempt: int) -> bool:
        """Whether this attempt suffers a transient error.

        Order-independent: a pure function of (seed, worker, shard,
        attempt), insensitive to how many other faults were queried.
        """
        if self.profile.transient_rate <= 0.0:
            return False
        draw = self._streams.uniform("transient", worker_id, shard_id, attempt)
        return draw < self.profile.transient_rate

    def failure_point(self, worker_id: str, shard_id: str, attempt: int) -> float:
        """Fraction of the service time consumed before a transient error.

        Drawn order-independently in [0.1, 0.9): an attempt never fails
        instantaneously nor exactly at completion.
        """
        return self._streams.uniform_in(
            0.1, 0.9, "failure_point", worker_id, shard_id, attempt
        )
