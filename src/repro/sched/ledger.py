"""The run ledger: a checkpointable record of every shard attempt.

Schema-versioned JSON in the style of :mod:`repro.core.persistence`: a
self-describing document carrying the run identity (seed, setup, grid,
beams, fault profile, worker roster) plus one record per shard with its
full attempt history (worker, virtual start/end, outcome).  Because the
engine is deterministic, two runs with the same seed serialise to
byte-identical documents — asserted by the test suite — and a partially
complete ledger lets a run *resume*: completed shards are skipped, their
records preserved verbatim.

Survey section
--------------
The multi-beam survey driver (:mod:`repro.survey`) checkpoints through
the :class:`SurveyLedger` defined here: an append-only JSON-lines file
whose first line is a schema-versioned header carrying the survey's
identity (seed, scenario, setup, beam count, ...) and every following
line one completed beam's deterministic record (verdict payload plus
serialised candidate clusters).  Appending one canonical line per beam
means a crash mid-write loses at most the final, partially-written
line; :func:`load_survey_ledger` recovers by dropping that truncated
tail and flagging it, so ``repro survey --resume`` re-runs only the
beam that was in flight.  Because beam records contain no wall-clock
fields, an interrupted-then-resumed survey converges to a file that is
byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import LedgerError, SchemaVersionError
from repro.sched.shard import Shard

#: Format version written into every ledger document.
LEDGER_SCHEMA_VERSION: int = 1

#: Schema versions :func:`load_ledger` still understands.
SUPPORTED_LEDGER_SCHEMAS: tuple[int, ...] = (1,)

#: The attempt outcomes a valid ledger may record.
OUTCOMES: tuple[str, ...] = ("ok", "transient", "crash")

#: The shard states a valid ledger may record.
STATES: tuple[str, ...] = ("pending", "done", "failed")


@dataclass(frozen=True)
class Attempt:
    """One execution attempt of one shard on one worker."""

    worker: str
    started_s: float
    finished_s: float
    outcome: str  # one of OUTCOMES

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise LedgerError(f"unknown attempt outcome {self.outcome!r}")
        if self.finished_s < self.started_s:
            raise LedgerError(
                f"attempt finishes ({self.finished_s}) before it starts "
                f"({self.started_s})"
            )

    def as_dict(self) -> dict:
        """JSON-ready rendering."""
        return {
            "worker": self.worker,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "outcome": self.outcome,
        }


@dataclass
class ShardRecord:
    """A shard plus its attempt history and final state."""

    shard: Shard
    attempts: list[Attempt] = field(default_factory=list)
    state: str = "pending"

    @property
    def successes(self) -> int:
        """Number of successful attempts (1 for a completed shard)."""
        return sum(1 for a in self.attempts if a.outcome == "ok")

    def as_dict(self) -> dict:
        """JSON-ready rendering."""
        return {
            "beam": self.shard.beam,
            "dm_start": self.shard.dm_start,
            "dm_count": self.shard.dm_count,
            "batch": self.shard.batch,
            "samples": self.shard.samples,
            "state": self.state,
            "attempts": [a.as_dict() for a in self.attempts],
        }


class RunLedger:
    """All shard records of one run, keyed by shard id."""

    def __init__(
        self,
        seed: int,
        setup_name: str,
        n_dms: int,
        n_beams: int,
        duration_s: float,
        profile: dict | None = None,
        workers: tuple[str, ...] = (),
    ):
        self.seed = seed
        self.setup_name = setup_name
        self.n_dms = n_dms
        self.n_beams = n_beams
        self.duration_s = duration_s
        self.profile = dict(profile or {})
        self.workers = tuple(workers)
        self.records: dict[str, ShardRecord] = {}

    # -- recording -----------------------------------------------------
    def register(self, shard: Shard) -> ShardRecord:
        """Get-or-create the record for ``shard``."""
        record = self.records.get(shard.shard_id)
        if record is None:
            record = ShardRecord(shard=shard)
            self.records[shard.shard_id] = record
        return record

    def note_attempt(self, shard: Shard, attempt: Attempt) -> None:
        """Append one attempt; an ``ok`` outcome completes the shard."""
        record = self.register(shard)
        if record.state == "done":
            raise LedgerError(
                f"shard {shard.shard_id} already completed; a second "
                f"attempt violates exactly-once execution"
            )
        record.attempts.append(attempt)
        if attempt.outcome == "ok":
            record.state = "done"

    def mark_failed(self, shard: Shard) -> None:
        """Record that ``shard`` exhausted its retry budget."""
        self.register(shard).state = "failed"

    # -- queries -------------------------------------------------------
    def completed_ids(self) -> set[str]:
        """Shard ids already done (the resume skip-set)."""
        return {
            sid for sid, rec in self.records.items() if rec.state == "done"
        }

    def counts(self) -> dict[str, int]:
        """State -> number of shards."""
        out = {state: 0 for state in STATES}
        for record in self.records.values():
            out[record.state] += 1
        return out

    @property
    def attempts_total(self) -> int:
        """All attempts across all shards."""
        return sum(len(r.attempts) for r in self.records.values())

    def exactly_once(self) -> bool:
        """True when every shard is done with exactly one success."""
        return all(
            r.state == "done" and r.successes == 1
            for r in self.records.values()
        )

    # -- persistence ---------------------------------------------------
    def to_document(self) -> dict:
        """Serialise to a JSON-ready, deterministic document."""
        return {
            "schema": LEDGER_SCHEMA_VERSION,
            "run": {
                "seed": self.seed,
                "setup": self.setup_name,
                "n_dms": self.n_dms,
                "n_beams": self.n_beams,
                "duration_s": self.duration_s,
                "profile": self.profile,
                "workers": list(self.workers),
            },
            "shards": {
                sid: self.records[sid].as_dict()
                for sid in sorted(self.records)
            },
        }

    def save(self, path: str | Path) -> Path:
        """Write the document to ``path``; returns the path.

        The rendering is canonical (sorted keys, fixed indent), so equal
        ledgers produce byte-identical files.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_document(), indent=1, sort_keys=True) + "\n"
        )
        return path


def validate_document(document: dict) -> None:
    """Raise :class:`LedgerError` unless ``document`` is a valid ledger.

    Checks the schema version, required keys, attempt outcomes, state
    consistency (a ``done`` shard has exactly one ``ok`` attempt, a
    ``pending``/``failed`` shard none), and that shard ids match their
    record's coordinates.
    """
    if not isinstance(document, dict):
        raise LedgerError("ledger document must be a JSON object")
    schema = document.get("schema")
    if schema not in SUPPORTED_LEDGER_SCHEMAS:
        if isinstance(schema, int) and schema > max(SUPPORTED_LEDGER_SCHEMAS):
            raise SchemaVersionError(
                f"unsupported ledger schema {schema!r}: this file was "
                f"written by a newer version of repro (this build reads "
                f"schemas up to {max(SUPPORTED_LEDGER_SCHEMAS)}); upgrade "
                f"repro or re-run the survey to regenerate the ledger"
            )
        raise LedgerError(f"unsupported ledger schema {schema!r}")
    run = document.get("run")
    if not isinstance(run, dict):
        raise LedgerError("ledger document lacks a 'run' section")
    for key in ("seed", "setup", "n_dms", "n_beams", "duration_s", "workers"):
        if key not in run:
            raise LedgerError(f"ledger run section lacks {key!r}")
    shards = document.get("shards")
    if not isinstance(shards, dict):
        raise LedgerError("ledger document lacks a 'shards' section")
    for sid, record in shards.items():
        state = record.get("state")
        if state not in STATES:
            raise LedgerError(f"shard {sid}: unknown state {state!r}")
        shard = Shard(
            beam=record["beam"],
            dm_start=record["dm_start"],
            dm_count=record["dm_count"],
            batch=record["batch"],
            samples=record["samples"],
        )
        if shard.shard_id != sid:
            raise LedgerError(
                f"shard id {sid!r} does not match its coordinates "
                f"({shard.shard_id})"
            )
        successes = 0
        for attempt in record.get("attempts", ()):
            outcome = attempt.get("outcome")
            if outcome not in OUTCOMES:
                raise LedgerError(
                    f"shard {sid}: unknown attempt outcome {outcome!r}"
                )
            if attempt["worker"] not in run["workers"]:
                raise LedgerError(
                    f"shard {sid}: attempt on unknown worker "
                    f"{attempt['worker']!r}"
                )
            successes += outcome == "ok"
        if state == "done" and successes != 1:
            raise LedgerError(
                f"shard {sid}: done with {successes} successful attempts "
                f"(exactly one required)"
            )
        if state != "done" and successes:
            raise LedgerError(
                f"shard {sid}: {state} but has a successful attempt"
            )


def load_ledger(path: str | Path) -> RunLedger:
    """Load and validate a ledger document, rebuilding the records."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise LedgerError(f"cannot read ledger at {path}: {exc}") from exc
    validate_document(document)
    run = document["run"]
    ledger = RunLedger(
        seed=run["seed"],
        setup_name=run["setup"],
        n_dms=run["n_dms"],
        n_beams=run["n_beams"],
        duration_s=run["duration_s"],
        profile=run.get("profile", {}),
        workers=tuple(run["workers"]),
    )
    for record in document["shards"].values():
        shard = Shard(
            beam=record["beam"],
            dm_start=record["dm_start"],
            dm_count=record["dm_count"],
            batch=record["batch"],
            samples=record["samples"],
        )
        rebuilt = ledger.register(shard)
        rebuilt.state = record["state"]
        rebuilt.attempts = [
            Attempt(
                worker=a["worker"],
                started_s=a["started_s"],
                finished_s=a["finished_s"],
                outcome=a["outcome"],
            )
            for a in record["attempts"]
        ]
    return ledger


# ----------------------------------------------------------------------
# The survey ledger (JSON lines, append-as-you-go)
# ----------------------------------------------------------------------
#: Format version written into every survey-ledger header line.
SURVEY_LEDGER_SCHEMA_VERSION: int = 1

#: Schema versions :func:`load_survey_ledger` still understands.
SUPPORTED_SURVEY_LEDGER_SCHEMAS: tuple[int, ...] = (1,)

#: Identity keys every survey-ledger header must carry.
_SURVEY_IDENTITY_KEYS = ("seed", "scenario", "setup", "n_beams", "n_dms")


def _canonical_line(doc: dict) -> str:
    """One record as canonical compact JSON (byte-deterministic)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


@dataclass
class SurveyBeamRecord:
    """One completed beam: its stream verdict and serialised clusters.

    Every field is deterministic (no wall-clock values), so the same
    survey produces byte-identical records whether run straight through
    or interrupted and resumed.
    """

    beam: int
    verdict: dict
    accepted: list = field(default_factory=list)
    vetoed: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.beam < 0:
            raise LedgerError("beam index must be non-negative")
        if not isinstance(self.verdict, dict) or "verdict" not in self.verdict:
            raise LedgerError(
                f"beam {self.beam}: record needs a verdict payload"
            )

    def as_dict(self) -> dict:
        """JSON-ready rendering (one ledger line)."""
        return {
            "beam": int(self.beam),
            "verdict": self.verdict,
            "accepted": list(self.accepted),
            "vetoed": list(self.vetoed),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SurveyBeamRecord":
        """Rebuild a record from one parsed ledger line."""
        if not isinstance(doc, dict) or "beam" not in doc:
            raise LedgerError(f"invalid survey beam record: {doc!r}")
        return cls(
            beam=int(doc["beam"]),
            verdict=doc.get("verdict", {}),
            accepted=list(doc.get("accepted", ())),
            vetoed=list(doc.get("vetoed", ())),
        )


class SurveyLedger:
    """The resumable beam-completion journal of one survey run.

    ``identity`` pins what the ledger is a checkpoint *of* — resuming
    against a different plan (other scenario, seed, beam count, ...) is
    refused rather than silently mixing records.  ``truncated`` is set
    by :func:`load_survey_ledger` when the final line of the file was
    partially written (a crash mid-append) and had to be dropped.
    """

    def __init__(self, identity: dict):
        for key in _SURVEY_IDENTITY_KEYS:
            if key not in identity:
                raise LedgerError(
                    f"survey ledger identity lacks {key!r} "
                    f"(needs {', '.join(_SURVEY_IDENTITY_KEYS)})"
                )
        self.identity = dict(identity)
        self.records: dict[int, SurveyBeamRecord] = {}
        self.truncated = False

    # -- recording -----------------------------------------------------
    def record_beam(self, record: SurveyBeamRecord) -> None:
        """Add one completed beam; a second record for a beam is an error."""
        if record.beam in self.records:
            raise LedgerError(
                f"beam {record.beam} already recorded; a second record "
                f"violates exactly-once completion"
            )
        self.records[record.beam] = record

    # -- queries -------------------------------------------------------
    def completed_beams(self) -> set[int]:
        """Beam indices already done (the resume skip-set)."""
        return set(self.records)

    def beam_records(self) -> tuple[SurveyBeamRecord, ...]:
        """All records in beam order."""
        return tuple(self.records[b] for b in sorted(self.records))

    def matches(self, identity: dict) -> bool:
        """Whether ``identity`` names the same survey as this ledger."""
        return self.identity == dict(identity)

    # -- persistence ---------------------------------------------------
    def header_doc(self) -> dict:
        """The schema-versioned first line of the file."""
        return {
            "schema": SURVEY_LEDGER_SCHEMA_VERSION,
            "survey": self.identity,
        }

    def start(self, path: str | Path) -> Path:
        """(Re)write the file: header plus every record held so far.

        Canonical rendering throughout, so a resumed run that rewrites
        its prefix produces exactly the bytes the original run wrote.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [_canonical_line(self.header_doc())]
        lines.extend(
            _canonical_line(r.as_dict()) for r in self.beam_records()
        )
        path.write_text("\n".join(lines) + "\n")
        return path

    def append_beam(
        self, path: str | Path, record: SurveyBeamRecord
    ) -> None:
        """Record ``record`` and append its line to ``path``."""
        self.record_beam(record)
        with Path(path).open("a") as handle:
            handle.write(_canonical_line(record.as_dict()) + "\n")


def load_survey_ledger(path: str | Path) -> SurveyLedger:
    """Load a survey ledger, recovering from a truncated final line.

    The survey driver appends one line per completed beam; a crash can
    leave the last line half-written.  That partial tail is dropped (and
    ``ledger.truncated`` set) so the resume re-runs the beam that was in
    flight.  A malformed line anywhere *else* — or a bad header — is
    corruption, not a crash artefact, and raises :class:`LedgerError`.
    """
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise LedgerError(
            f"cannot read survey ledger at {path}: {exc}"
        ) from exc
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        raise LedgerError(f"survey ledger at {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise LedgerError(
            f"survey ledger at {path} has an unreadable header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise LedgerError("survey ledger header must be a JSON object")
    schema = header.get("schema")
    if schema not in SUPPORTED_SURVEY_LEDGER_SCHEMAS:
        if isinstance(schema, int) and schema > max(
            SUPPORTED_SURVEY_LEDGER_SCHEMAS
        ):
            raise SchemaVersionError(
                f"unsupported survey ledger schema {schema!r}: this file "
                f"was written by a newer version of repro (this build "
                f"reads schemas up to "
                f"{max(SUPPORTED_SURVEY_LEDGER_SCHEMAS)}); upgrade repro "
                f"or re-run the survey to regenerate the ledger"
            )
        raise LedgerError(f"unsupported survey ledger schema {schema!r}")
    identity = header.get("survey")
    if not isinstance(identity, dict):
        raise LedgerError("survey ledger header lacks a 'survey' section")
    ledger = SurveyLedger(identity)
    # The file must end with a newline after every complete record; a
    # missing trailing newline marks the final line as a partial write
    # even if it happens to parse.
    unterminated = not text.endswith("\n")
    for index, line in enumerate(lines[1:], start=1):
        final = index == len(lines) - 1
        try:
            doc = json.loads(line)
            record = SurveyBeamRecord.from_dict(doc)
        except (json.JSONDecodeError, LedgerError, ValueError) as exc:
            if final:
                ledger.truncated = True
                break
            raise LedgerError(
                f"survey ledger at {path} is corrupt at line "
                f"{index + 1}: {exc}"
            ) from exc
        if final and unterminated:
            ledger.truncated = True
            break
        ledger.record_beam(record)
    return ledger
