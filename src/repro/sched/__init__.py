"""repro.sched: fault-tolerant sharded execution for fleet-scale surveys.

The execution layer above :mod:`repro.pipeline`'s planners: where
:func:`~repro.pipeline.fleet.plan_fleet` decides *which* devices to buy,
this package *runs* the survey on them — sharding beams x DM sub-ranges
x time batches, dispatching to simulated workers driven by the
:mod:`repro.hardware` model and :class:`~repro.service.TuningService`
configurations, and surviving injected crashes, transient errors, and
stragglers while recording every attempt in a checkpointable, seeded,
byte-reproducible :class:`RunLedger`.

Typical use::

    from repro.sched import ExecutionEngine, FaultProfile

    engine = ExecutionEngine.from_inventory(
        inventory, setup, grid, n_beams=12, duration_s=2.0,
        seed=42, faults=FaultProfile.default_injection(),
    )
    report = engine.run()
    print(report.summary())
    report.ledger.save("ledger.json")

See ``docs/scheduler.md`` for the architecture and fault model.
"""

from repro.sched.engine import ExecutionEngine, RunReport
from repro.sched.faults import FaultInjector, FaultProfile
from repro.sched.ledger import (
    LEDGER_SCHEMA_VERSION,
    SUPPORTED_LEDGER_SCHEMAS,
    SUPPORTED_SURVEY_LEDGER_SCHEMAS,
    SURVEY_LEDGER_SCHEMA_VERSION,
    Attempt,
    RunLedger,
    ShardRecord,
    SurveyBeamRecord,
    SurveyLedger,
    load_ledger,
    load_survey_ledger,
    validate_document,
)
from repro.sched.shard import (
    Shard,
    dm_chunk_for_memory,
    shard_memory_bytes,
    shard_survey,
)
from repro.sched.workers import ServiceTimeModel, Worker, WorkerStats

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "SUPPORTED_LEDGER_SCHEMAS",
    "SUPPORTED_SURVEY_LEDGER_SCHEMAS",
    "SURVEY_LEDGER_SCHEMA_VERSION",
    "Attempt",
    "ExecutionEngine",
    "FaultInjector",
    "FaultProfile",
    "RunLedger",
    "RunReport",
    "ServiceTimeModel",
    "Shard",
    "ShardRecord",
    "SurveyBeamRecord",
    "SurveyLedger",
    "Worker",
    "WorkerStats",
    "dm_chunk_for_memory",
    "load_ledger",
    "load_survey_ledger",
    "shard_memory_bytes",
    "shard_survey",
    "validate_document",
]
