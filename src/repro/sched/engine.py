"""The fault-tolerant sharded execution engine.

A deterministic, seedable discrete-event simulation that takes a device
inventory (or a :class:`~repro.pipeline.fleet.FleetPlan`) plus a survey
and runs every shard to completion under injected failure:

* **dispatch** is locality-aware (each beam's shards start on one home
  worker, chosen least-loaded by modelled seconds) with **work
  stealing**: an idle worker takes half the backlog of the most loaded
  survivor, which is what bounds stragglers;
* **faults** follow a seeded :class:`~repro.sched.faults.FaultProfile`
  — crashes blacklist the device and re-pack its orphaned shards onto
  survivors (graceful degradation), transient errors retry with
  exponential backoff under a bounded attempt budget;
* every attempt lands in a checkpointable
  :class:`~repro.sched.ledger.RunLedger`, so reruns with the same seed
  are byte-identical and interrupted runs resume;
* the whole run is instrumented through :mod:`repro.obs`
  (``repro_sched_*`` counters/gauges/histograms, spans per shard).

Virtual time: the engine advances a simulated clock driven by the
hardware model's service times, so a fleet-scale run costs milliseconds
of wall clock while producing faithful makespan/throughput numbers.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import SchedulerError, ShardError
from repro.obs import get_registry, span
from repro.sched.faults import FaultInjector, FaultProfile
from repro.sched.ledger import Attempt, RunLedger
from repro.sched.shard import Shard, shard_survey
from repro.sched.workers import ServiceTimeModel, Worker, WorkerStats
from repro.utils.rng import RandomStreams
from repro.utils.validation import require_positive, require_positive_int


def _slug(name: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in name.lower())


@dataclass(frozen=True)
class RunReport:
    """Everything a run produced, besides the ledger's attempt detail."""

    setup_name: str
    n_dms: int
    n_beams: int
    duration_s: float
    seed: int
    shards_total: int
    shards_done: int
    shards_failed: int
    shards_resumed: int
    attempts: int
    retries: int
    steals: int
    requeues: int
    crashed_workers: tuple[str, ...]
    makespan_s: float
    worker_stats: tuple[WorkerStats, ...]
    ledger: RunLedger = field(repr=False, compare=False)

    @property
    def complete(self) -> bool:
        """Every shard of the run finished successfully."""
        return self.shards_failed == 0 and (
            self.shards_done + self.shards_resumed == self.shards_total
        )

    @property
    def degraded(self) -> bool:
        """The run lost at least one device."""
        return bool(self.crashed_workers)

    @property
    def realtime_sustained(self) -> bool:
        """Whether the fleet kept up with the telescope.

        All beams stream in parallel, so ``duration_s`` seconds of sky
        must be processed within ``duration_s`` seconds of (virtual)
        computation — the Sec. V-D real-time constraint at fleet scale.
        """
        return self.complete and self.makespan_s <= self.duration_s

    @property
    def realtime_margin(self) -> float:
        """duration / makespan; > 1 means real time with headroom."""
        return self.duration_s / self.makespan_s if self.makespan_s else 0.0

    @property
    def data_seconds(self) -> float:
        """Beam-seconds of sky processed."""
        return self.n_beams * self.duration_s

    @property
    def throughput(self) -> float:
        """Beam-seconds of sky processed per second of computation."""
        return self.data_seconds / self.makespan_s if self.makespan_s else 0.0

    def summary(self) -> str:
        """Human-readable run report."""
        lines = [
            f"sched run: {self.setup_name}, {self.n_dms} DMs x "
            f"{self.n_beams} beams x {self.duration_s:g} s (seed {self.seed})",
            f"  shards : {self.shards_done}/{self.shards_total} done"
            + (f" ({self.shards_resumed} resumed)" if self.shards_resumed else "")
            + (f", {self.shards_failed} FAILED" if self.shards_failed else ""),
            f"  faults : {len(self.crashed_workers)} crash(es), "
            f"{self.retries} retries, {self.requeues} requeues, "
            f"{self.steals} steals",
            f"  makespan {self.makespan_s:.3f} s, throughput "
            f"{self.throughput:.2f} beam-seconds/s",
            f"  real time {'SUSTAINED' if self.realtime_sustained else 'NOT sustained'}"
            + (" after degradation" if self.degraded else ""),
        ]
        for stats in self.worker_stats:
            lines.append(f"    {stats.describe()}")
        return "\n".join(lines)


class ExecutionEngine:
    """Runs a sharded survey over simulated workers, under faults.

    Parameters
    ----------
    inventory:
        ``(device_spec, units, memory_bytes)`` triples — use
        :meth:`from_inventory` / :meth:`from_plan` to build them from
        the fleet-planner types.
    setup / grid / n_beams / duration_s:
        The survey: every beam contributes ``duration_s`` seconds of
        data on ``grid``.
    seed:
        Root seed of every stochastic choice (fault draws); two runs
        with equal seeds produce byte-identical ledgers.
    faults:
        The :class:`FaultProfile` to inject (default: none).
    service:
        A :class:`~repro.service.TuningService` supplying tuned
        configurations; one is created (and closed) internally if
        omitted.
    steal:
        Enable work stealing (disable to measure its benefit).
    max_attempts:
        Attempt budget per shard before it is marked failed.
    backoff_base_s / backoff_factor:
        Exponential backoff for transient retries (virtual seconds).
    max_dms_per_shard:
        Optional cap on the DM chunk (testing / finer load balancing).
    resume_from:
        A prior :class:`RunLedger`; its completed shards are skipped and
        carried into this run's ledger verbatim.
    """

    def __init__(
        self,
        inventory,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        n_beams: int,
        duration_s: float = 1.0,
        *,
        seed: int = 0,
        faults: FaultProfile | None = None,
        service=None,
        steal: bool = True,
        max_attempts: int = 5,
        backoff_base_s: float = 0.02,
        backoff_factor: float = 2.0,
        max_dms_per_shard: int | None = None,
        resume_from: RunLedger | None = None,
    ):
        require_positive_int(n_beams, "n_beams")
        require_positive(duration_s, "duration_s")
        require_positive_int(max_attempts, "max_attempts")
        require_positive(backoff_base_s, "backoff_base_s")
        if backoff_factor < 1.0:
            raise SchedulerError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        if not inventory:
            raise SchedulerError("engine inventory is empty")
        self.setup = setup
        self.grid = grid
        self.n_beams = n_beams
        self.duration_s = duration_s
        self.seed = seed
        self.faults = faults or FaultProfile.none()
        self.steal = steal
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.streams = RandomStreams(seed)
        self.model = ServiceTimeModel(setup, grid, service=service)
        self._owns_service = service is None
        self._resume_from = resume_from

        self.workers: dict[str, Worker] = {}
        min_memory = None
        for device, units, memory_bytes in inventory:
            require_positive_int(units, "units")
            require_positive_int(memory_bytes, "memory_bytes")
            min_memory = (
                memory_bytes if min_memory is None
                else min(min_memory, memory_bytes)
            )
            for index in range(units):
                worker_id = f"{_slug(device.name)}/{index}"
                if worker_id in self.workers:
                    raise SchedulerError(
                        f"duplicate device type {device.name!r} in inventory"
                    )
                self.workers[worker_id] = Worker(
                    worker_id=worker_id, device=device
                )
        self.shards = shard_survey(
            setup,
            grid,
            n_beams,
            duration_s,
            memory_bytes=min_memory,
            max_dms_per_shard=max_dms_per_shard,
        )

    # ------------------------------------------------------------------
    # Constructors from the fleet-planner types
    # ------------------------------------------------------------------
    @classmethod
    def from_inventory(
        cls, fleet_devices, setup, grid, n_beams, duration_s=1.0, **kwargs
    ) -> "ExecutionEngine":
        """Engine over every unit of a ``list[FleetDevice]`` inventory."""
        inventory = [
            (entry.device, entry.available, entry.memory_bytes)
            for entry in fleet_devices
        ]
        return cls(inventory, setup, grid, n_beams, duration_s, **kwargs)

    @classmethod
    def from_plan(
        cls, plan, fleet_devices, setup, grid, duration_s=1.0, **kwargs
    ) -> "ExecutionEngine":
        """Engine over exactly the units a :class:`FleetPlan` selected.

        ``fleet_devices`` is the inventory the plan was computed from
        (it supplies the :class:`~repro.hardware.device.DeviceSpec` and
        memory size per device name).
        """
        by_name = {entry.device.name: entry for entry in fleet_devices}
        inventory = []
        for assignment in plan.assignments:
            entry = by_name.get(assignment.device_name)
            if entry is None:
                raise SchedulerError(
                    f"plan uses {assignment.device_name!r} which is not in "
                    f"the provided inventory"
                )
            inventory.append(
                (entry.device, assignment.units, entry.memory_bytes)
            )
        return cls(
            inventory, setup, grid, plan.n_beams, duration_s, **kwargs
        )

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self, strict: bool = False) -> RunReport:
        """Execute every shard; returns the :class:`RunReport`.

        ``strict=True`` raises :class:`ShardError` if any shard exhausts
        its attempt budget instead of reporting it failed.
        """
        with span(
            "sched.run",
            setup=self.setup.name,
            n_dms=self.grid.n_dms,
            n_beams=self.n_beams,
            workers=len(self.workers),
        ) as run_span:
            report = self._run()
            run_span.attributes["makespan_s"] = round(report.makespan_s, 6)
            run_span.attributes["degraded"] = report.degraded
        self._record_metrics(report)
        if strict and report.shards_failed:
            raise ShardError(
                f"{report.shards_failed} shard(s) exhausted their "
                f"{self.max_attempts}-attempt budget"
            )
        return report

    def _run(self) -> RunReport:
        workers = self.workers
        worker_ids = tuple(sorted(workers))
        ledger = RunLedger(
            seed=self.seed,
            setup_name=self.setup.name,
            n_dms=self.grid.n_dms,
            n_beams=self.n_beams,
            duration_s=self.duration_s,
            profile=self.faults.as_dict(),
            workers=worker_ids,
        )

        # Resume: completed shards are carried over and never re-run.
        resumed_ids: set[str] = set()
        if self._resume_from is not None:
            resumed_ids = self._resume_from.completed_ids()
            for sid in sorted(resumed_ids):
                prior = self._resume_from.records[sid]
                record = ledger.register(prior.shard)
                record.state = prior.state
                record.attempts = list(prior.attempts)
        pending = [s for s in self.shards if s.shard_id not in resumed_ids]
        for shard in pending:
            ledger.register(shard)

        try:
            horizon = self._estimate_makespan(pending)
            injector = FaultInjector(
                self.faults, self.streams, worker_ids, horizon
            )
            for worker in workers.values():
                worker.slowdown = injector.slowdown_for(worker.worker_id)
                worker.crash_at = injector.crash_time(worker.worker_id)
            self._distribute(pending)

            counters = {"retries": 0, "steals": 0, "requeues": 0}
            done = failed = 0
            makespan = 0.0
            sequence = itertools.count()
            events: list[tuple[float, int, str, tuple]] = []

            def push(at: float, kind: str, payload: tuple) -> None:
                heapq.heappush(events, (at, next(sequence), kind, payload))

            def start_next(worker: Worker, now: float) -> None:
                """Dispatch the worker's next shard, stealing if empty."""
                if not worker.idle:
                    return
                shard = self._take_local(worker)
                if shard is None and self.steal:
                    shard = self._steal_for(worker, counters)
                if shard is None:
                    return
                sid = shard.shard_id
                attempt_no = len(ledger.records[sid].attempts) + 1
                nominal = self.model.seconds(worker.device, shard)
                service_s = nominal * worker.slowdown
                if injector.transient_fails(worker.worker_id, sid, attempt_no):
                    outcome = "transient"
                    service_s *= injector.failure_point(
                        worker.worker_id, sid, attempt_no
                    )
                else:
                    outcome = "ok"
                worker.running = shard
                worker.run_token += 1
                push(
                    now + service_s,
                    "finish",
                    (worker.worker_id, worker.run_token, shard, outcome, now),
                )

            def requeue(shard: Shard, at: float, backoff: bool) -> None:
                """Return a failed/orphaned shard to circulation."""
                counters["requeues"] += 1
                attempt_no = len(ledger.records[shard.shard_id].attempts)
                delay = (
                    self.backoff_base_s
                    * self.backoff_factor ** max(0, attempt_no - 1)
                    if backoff
                    else 0.0
                )
                push(at + delay, "ready", (shard,))

            for worker in workers.values():
                if worker.crash_at is not None:
                    push(worker.crash_at, "crash", (worker.worker_id,))
                start_next(worker, 0.0)

            while events and (done + failed) < len(pending):
                now, _, kind, payload = heapq.heappop(events)

                if kind == "finish":
                    worker_id, token, shard, outcome, started = payload
                    worker = workers[worker_id]
                    if not worker.alive or worker.run_token != token:
                        continue  # interrupted by a crash: stale event
                    with span(
                        "sched.shard",
                        shard=shard.shard_id,
                        worker=worker_id,
                        outcome=outcome,
                    ):
                        ledger.note_attempt(
                            shard,
                            Attempt(
                                worker=worker_id,
                                started_s=started,
                                finished_s=now,
                                outcome=outcome,
                            ),
                        )
                    worker.running = None
                    worker.busy_seconds += now - started
                    if outcome == "ok":
                        worker.shards_done += 1
                        done += 1
                        makespan = max(makespan, now)
                    else:
                        counters["retries"] += 1
                        record = ledger.records[shard.shard_id]
                        if len(record.attempts) >= self.max_attempts:
                            ledger.mark_failed(shard)
                            failed += 1
                        else:
                            requeue(shard, now, backoff=True)
                    start_next(worker, now)

                elif kind == "crash":
                    (worker_id,) = payload
                    worker = workers[worker_id]
                    if not worker.alive:
                        continue
                    worker.alive = False
                    worker.run_token += 1  # invalidate any in-flight finish
                    if worker.running is not None:
                        shard = worker.running
                        started = self._running_start(events, worker_id)
                        ledger.note_attempt(
                            shard,
                            Attempt(
                                worker=worker_id,
                                started_s=min(started, now),
                                finished_s=now,
                                outcome="crash",
                            ),
                        )
                        worker.busy_seconds += now - min(started, now)
                        worker.running = None
                        record = ledger.records[shard.shard_id]
                        if len(record.attempts) >= self.max_attempts:
                            ledger.mark_failed(shard)
                            failed += 1
                        else:
                            requeue(shard, now, backoff=False)
                    self._repack(worker, now)
                    if not any(w.alive for w in workers.values()):
                        raise SchedulerError(
                            "every worker crashed; "
                            f"{len(pending) - done} shard(s) stranded"
                        )
                    for survivor_id in sorted(workers):
                        start_next(workers[survivor_id], now)

                elif kind == "ready":
                    (shard,) = payload
                    target = self._least_loaded(now)
                    if target is None:
                        raise SchedulerError(
                            "no surviving worker to requeue "
                            f"shard {shard.shard_id}"
                        )
                    self._enqueue(target, shard)
                    start_next(target, now)

            if (done + failed) < len(pending):
                raise SchedulerError(
                    f"run stalled with {len(pending) - done - failed} "
                    "shard(s) unscheduled"
                )
        finally:
            if self._owns_service:
                self.model.close()

        crashed = tuple(
            wid for wid in worker_ids if not workers[wid].alive
        )
        stats = tuple(
            WorkerStats(
                worker_id=wid,
                device_name=workers[wid].device.name,
                shards_done=workers[wid].shards_done,
                busy_seconds=workers[wid].busy_seconds,
                slowdown=workers[wid].slowdown,
                crashed=not workers[wid].alive,
            )
            for wid in worker_ids
        )
        return RunReport(
            setup_name=self.setup.name,
            n_dms=self.grid.n_dms,
            n_beams=self.n_beams,
            duration_s=self.duration_s,
            seed=self.seed,
            shards_total=len(self.shards),
            shards_done=done,
            shards_failed=failed,
            shards_resumed=len(resumed_ids),
            attempts=ledger.attempts_total,
            retries=counters["retries"],
            steals=counters["steals"],
            requeues=counters["requeues"],
            crashed_workers=crashed,
            makespan_s=makespan,
            worker_stats=stats,
            ledger=ledger,
        )

    # ------------------------------------------------------------------
    # Numeric execution
    # ------------------------------------------------------------------
    def execute_numeric(
        self,
        input_data,
        config,
        batch: int = 0,
        out=None,
        backend: str | None = None,
    ):
        """Deprecated: route numeric execution through :mod:`repro.run`.

        The virtual-clock :meth:`run` models *when* shards finish; this
        runs the actual arithmetic for time batch ``batch``, pushing the
        engine's own shard decomposition through the sharded mode of the
        :mod:`repro.run` facade — so the sharding the scheduler
        dispatches is exactly the sharding that produces numbers, and
        the stitched output is bit-identical to an unsharded batched
        launch.  ``input_data`` is ``(n_beams, channels, t)``; ``config``
        must tile every shard's DM count (tuned configurations need not
        tile remainder DM chunks, so the caller chooses it); ``backend``
        selects the kernel executor per shard launch; ``out``, when
        given, must be a float32 ``(n_beams, n_dms, samples)`` buffer.
        Returns ``(n_beams, n_dms, samples)``.

        The blessed spelling is
        ``repro.run.execute(ExecutionRequest(data=..., config=...,
        delay_table=..., shards=engine.shards_for_batch(batch)))``.
        Warns once per process.
        """
        from repro.utils.deprecation import warn_legacy_execute

        warn_legacy_execute(
            "ExecutionEngine.execute_numeric",
            "repro.run.execute(ExecutionRequest(data=input_data, "
            "config=config, delay_table=delays, "
            "shards=engine.shards_for_batch(batch)))",
        )
        from repro.run import ExecutionRequest, execute

        result = execute(
            ExecutionRequest(
                data=input_data,
                config=config,
                delay_table=self.delay_table(),
                shards=self.shards_for_batch(batch),
                out=out,
                backend=backend,
            )
        )
        return result.output

    def shards_for_batch(self, batch: int = 0):
        """The engine's shard decomposition for one time batch.

        This is what :func:`repro.run.execute` wants as ``shards=`` when
        reproducing the engine's numeric execution.
        """
        shards = tuple(s for s in self.shards if s.batch == batch)
        if not shards:
            raise SchedulerError(
                f"engine has no shards for time batch {batch}"
            )
        return shards

    def delay_table(self):
        """The ``(n_dms, channels)`` delay table of this engine's survey."""
        from repro.astro.dispersion import delay_table

        return delay_table(self.setup, self.grid.values)

    # ------------------------------------------------------------------
    # Dispatch helpers
    # ------------------------------------------------------------------
    def _estimate_makespan(self, pending: list[Shard]) -> float:
        """Fault-free makespan estimate (sizes the crash times)."""
        if not pending:
            return 0.0
        rate = sum(
            1.0 / self.model.seconds(w.device, pending[0])
            for w in self.workers.values()
        )
        return len(pending) / rate if rate else 0.0

    def _distribute(self, pending: list[Shard]) -> None:
        """Locality-aware initial placement: whole beams, least-loaded.

        Beams are assigned greedily to the worker whose modelled backlog
        grows least — heterogeneous fleets get proportionally more beams
        on faster devices, and a beam's shards stay together so the
        input stays resident on one device unless stealing intervenes.
        """
        by_beam: dict[int, list[Shard]] = {}
        for shard in pending:
            by_beam.setdefault(shard.beam, []).append(shard)
        workers = [self.workers[wid] for wid in sorted(self.workers)]
        loads = {w.worker_id: 0.0 for w in workers}
        for beam in sorted(by_beam):
            shards = by_beam[beam]
            best, best_finish = None, None
            for worker in workers:
                cost = sum(
                    self.model.seconds(worker.device, s) for s in shards
                )
                finish = loads[worker.worker_id] + cost
                if best_finish is None or finish < best_finish:
                    best, best_finish = worker, finish
            for shard in shards:
                self._enqueue(best, shard)
            loads[best.worker_id] = best_finish

    def _enqueue(self, worker: Worker, shard: Shard) -> None:
        worker.queue.append(shard)
        worker.queued_seconds += self.model.seconds(worker.device, shard)

    def _take_local(self, worker: Worker) -> Shard | None:
        if not worker.queue:
            return None
        shard = worker.queue.popleft()
        worker.queued_seconds -= self.model.seconds(worker.device, shard)
        return shard

    def _steal_for(self, thief: Worker, counters: dict) -> Shard | None:
        """Take half the backlog of the most loaded survivor."""
        victim = None
        victim_backlog = 0.0
        for worker in self.workers.values():
            if worker is thief or not worker.alive or not worker.queue:
                continue
            backlog = worker.expected_backlog_s()
            if backlog > victim_backlog:
                victim, victim_backlog = worker, backlog
        if victim is None:
            return None
        count = max(1, len(victim.queue) // 2)
        stolen = [victim.queue.pop() for _ in range(count)]  # tail first
        victim.shards_stolen_from += count
        counters["steals"] += count
        for shard in stolen:
            victim.queued_seconds -= self.model.seconds(
                victim.device, shard
            )
        for shard in reversed(stolen):  # preserve original order
            self._enqueue(thief, shard)
        return self._take_local(thief)

    def _least_loaded(self, now: float) -> Worker | None:
        """The alive worker with the smallest expected backlog."""
        best, best_load = None, None
        for wid in sorted(self.workers):
            worker = self.workers[wid]
            if not worker.alive:
                continue
            load = worker.expected_backlog_s() + (
                0.0 if worker.running is None else 1e-9
            )
            if best_load is None or load < best_load:
                best, best_load = worker, load
        return best

    def _repack(self, dead: Worker, now: float) -> None:
        """Graceful degradation: orphaned queue onto survivors."""
        orphans = list(dead.queue)
        dead.queue.clear()
        dead.queued_seconds = 0.0
        for shard in orphans:
            target = self._least_loaded(now)
            if target is None:
                raise SchedulerError(
                    "every worker crashed; cannot re-pack orphaned shards"
                )
            self._enqueue(target, shard)

    @staticmethod
    def _running_start(events, worker_id: str) -> float:
        """Recover the start time of a crashed worker's in-flight attempt."""
        for _, _, kind, payload in events:
            if kind == "finish" and payload[0] == worker_id:
                return payload[4]
        return 0.0

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _record_metrics(self, report: RunReport) -> None:
        registry = get_registry()
        setup = self.setup.name
        registry.counter("repro_sched_runs_total", setup=setup).inc()
        registry.counter(
            "repro_sched_shards_total", setup=setup, outcome="done"
        ).inc(report.shards_done)
        if report.shards_failed:
            registry.counter(
                "repro_sched_shards_total", setup=setup, outcome="failed"
            ).inc(report.shards_failed)
        registry.counter(
            "repro_sched_retries_total", setup=setup
        ).inc(report.retries)
        registry.counter(
            "repro_sched_steals_total", setup=setup
        ).inc(report.steals)
        registry.counter(
            "repro_sched_requeues_total", setup=setup
        ).inc(report.requeues)
        for stats in report.worker_stats:
            if stats.crashed:
                registry.counter(
                    "repro_sched_crashes_total", device=stats.device_name
                ).inc()
            registry.histogram(
                "repro_sched_worker_busy_seconds", device=stats.device_name
            ).observe(stats.busy_seconds)
        registry.gauge("repro_sched_makespan_seconds", setup=setup).set(
            report.makespan_s
        )
        registry.gauge("repro_sched_realtime_margin", setup=setup).set(
            report.realtime_margin
        )
        registry.gauge("repro_sched_workers_alive", setup=setup).set(
            sum(1 for s in report.worker_stats if not s.crashed)
        )
        registry.gauge("repro_sched_workers_blacklisted", setup=setup).set(
            len(report.crashed_workers)
        )
