"""Simulated workers: devices executing shards under the hardware model.

Each worker is one physical unit of a :class:`~repro.pipeline.fleet`
device type.  Its per-shard service time comes from the same machinery
the tuner trusts: the device's *tuned* kernel configuration (obtained
once per device type through :class:`~repro.service.TuningService`, so
the scheduler benefits from the service's caching/warm-start tiers) run
through :class:`~repro.hardware.model.PerformanceModel` on the shard's
DM sub-grid, plus the device's launch overhead already included there.
Fault injection then scales the result by the worker's slowdown factor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.hardware.device import DeviceSpec
from repro.hardware.model import PerformanceModel
from repro.sched.shard import Shard


class ServiceTimeModel:
    """Modelled seconds for (device, shard), cached two ways.

    The tuned configuration is resolved once per (device type, shard DM
    count) — a shard runs the kernel on its DM sub-grid, so the
    configuration must be tuned for (and tile) that shape, not the full
    survey grid.  Surveys use at most two DM counts (the chunk and a
    remainder), so this stays at a handful of service requests.
    Per-shard-shape simulations are cached by ``(device, dm_start,
    dm_count, samples)`` since surveys reuse them thousands of times.
    """

    def __init__(
        self,
        setup: ObservationSetup,
        grid: DMTrialGrid,
        service=None,
    ):
        self.setup = setup
        self.grid = grid
        self._service = service
        self._configs: dict[tuple[str, int], KernelConfiguration] = {}
        self._seconds: dict[tuple[str, int, int, int], float] = {}

    def _ensure_service(self):
        if self._service is None:
            from repro.service import TuningService  # local: avoid cycle

            self._service = TuningService(max_workers=1)
        return self._service

    def tuned_config(
        self, device: DeviceSpec, dm_count: int | None = None
    ) -> KernelConfiguration:
        """The device's tuned configuration for a ``dm_count``-trial shard.

        Tuned on a representative sub-grid of that size (the shape is
        what the tuning space depends on, not the DM offset).
        """
        n_dms = self.grid.n_dms if dm_count is None else dm_count
        key = (device.name, n_dms)
        config = self._configs.get(key)
        if config is None:
            from repro.service import TuneRequest  # local: avoid cycle

            service = self._ensure_service()
            grid = self.grid.subgrid(0, n_dms)
            request = TuneRequest(
                setup=self.setup, n_dms=grid, device=device, tenant="sched"
            )
            config = service.resolve(request).best.config
            self._configs[key] = config
        return config

    def seconds(self, device: DeviceSpec, shard: Shard) -> float:
        """Modelled service time of ``shard`` on ``device`` (no faults)."""
        key = (device.name, shard.dm_start, shard.dm_count, shard.samples)
        cached = self._seconds.get(key)
        if cached is None:
            config = self.tuned_config(device, shard.dm_count)
            model = PerformanceModel(
                device, self.setup, shard.subgrid(self.grid)
            )
            cached = model.simulate(
                config, samples=shard.samples, validate=False
            ).seconds
            self._seconds[key] = cached
        return cached

    def close(self) -> None:
        """Shut down an internally created tuning service, if any."""
        if self._service is not None and hasattr(self._service, "close"):
            self._service.close()


@dataclass
class Worker:
    """One device unit: a queue of local shards plus run-time state."""

    worker_id: str
    device: DeviceSpec
    slowdown: float = 1.0
    crash_at: float | None = None

    def __post_init__(self) -> None:
        self.alive: bool = True
        self.queue: deque[Shard] = deque()
        self.running: Shard | None = None
        self.run_token: int = 0  # invalidates stale finish events
        self.busy_seconds: float = 0.0
        self.shards_done: int = 0
        self.shards_stolen_from: int = 0
        self.queued_seconds: float = 0.0  # expected seconds of queued work

    @property
    def idle(self) -> bool:
        """Alive with nothing running (it may still have queued work)."""
        return self.alive and self.running is None

    def expected_backlog_s(self) -> float:
        """Expected seconds to drain this worker's queue at its own pace."""
        return self.queued_seconds * self.slowdown


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker accounting surfaced in the run report."""

    worker_id: str
    device_name: str
    shards_done: int
    busy_seconds: float
    slowdown: float
    crashed: bool

    def describe(self) -> str:
        """One line for the report."""
        flags = []
        if self.crashed:
            flags.append("CRASHED")
        if self.slowdown > 1.0:
            flags.append(f"straggler x{self.slowdown:g}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"{self.worker_id}: {self.shards_done} shards, "
            f"{self.busy_seconds:.3f} s busy{suffix}"
        )
