"""Work units: slicing a survey into schedulable shards.

A *shard* is the scheduler's unit of work: one beam, one contiguous
DM-trial sub-range, one time batch.  The decomposition is lossless —
dedispersion is independent per (beam, DM trial, output sample), so the
union of all shard outputs equals the unsharded output (asserted by
``tests/sched/test_shard.py`` through the functional kernel).

Shard *sizing* follows the same memory accounting the multi-beam packer
uses (paper Sec. V-D): a shard's device footprint is the channelised
input for one batch (batch length plus the grid's maximum delay) plus
the dedispersed output of its DM sub-range, and the DM chunk is chosen
as the largest count whose footprint fits the per-shard memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.errors import ShardError
from repro.utils.intmath import ceil_div
from repro.utils.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class Shard:
    """One schedulable unit: beam x DM sub-range x time batch."""

    beam: int
    dm_start: int
    dm_count: int
    batch: int
    samples: int

    def __post_init__(self) -> None:
        require_positive_int(self.dm_count, "dm_count")
        require_positive_int(self.samples, "samples")
        if self.beam < 0 or self.dm_start < 0 or self.batch < 0:
            raise ShardError(
                f"shard indices must be non-negative: {self!r}"
            )

    @property
    def shard_id(self) -> str:
        """Stable, sortable identity used by the ledger."""
        return (
            f"b{self.beam:04d}/d{self.dm_start:05d}+{self.dm_count}"
            f"/t{self.batch:04d}"
        )

    def subgrid(self, grid: DMTrialGrid) -> DMTrialGrid:
        """The DM-trial grid this shard dedisperses."""
        return grid.subgrid(self.dm_start, self.dm_count)


def shard_memory_bytes(
    setup: ObservationSetup, grid: DMTrialGrid, dm_count: int, samples: int
) -> int:
    """Device footprint of one shard: batch input plus sub-range output.

    The input must cover the batch plus the delay at the *grid's* highest
    trial DM (a conservative bound that holds for every sub-range), the
    output only the shard's own trials.
    """
    return setup.input_bytes(grid.n_dms, grid.step, samples=samples) + (
        setup.output_bytes(dm_count, samples=samples)
    )


def dm_chunk_for_memory(
    setup: ObservationSetup,
    grid: DMTrialGrid,
    memory_bytes: int,
    samples: int | None = None,
) -> int:
    """Largest DM-trial count whose shard footprint fits ``memory_bytes``.

    Raises :class:`ShardError` when even a single-trial shard does not
    fit — no scheduler can place such work.
    """
    require_positive_int(memory_bytes, "memory_bytes")
    s = setup.samples_per_batch if samples is None else samples
    if shard_memory_bytes(setup, grid, 1, s) > memory_bytes:
        raise ShardError(
            f"a single-DM shard of {setup.name} needs "
            f"{shard_memory_bytes(setup, grid, 1, s)} B; only "
            f"{memory_bytes} B available"
        )
    low, high = 1, grid.n_dms
    while low < high:  # largest feasible count, by bisection
        mid = (low + high + 1) // 2
        if shard_memory_bytes(setup, grid, mid, s) <= memory_bytes:
            low = mid
        else:
            high = mid - 1
    return low


def shard_survey(
    setup: ObservationSetup,
    grid: DMTrialGrid,
    n_beams: int,
    duration_s: float = 1.0,
    memory_bytes: int | None = None,
    max_dms_per_shard: int | None = None,
) -> tuple[Shard, ...]:
    """Slice a survey into shards, beam-major.

    ``duration_s`` seconds of every beam are processed in batches of
    ``setup.samples_per_batch`` samples; the DM axis is chunked to fit
    ``memory_bytes`` (per-shard device budget; ``None`` leaves the DM
    axis whole) and never exceeds ``max_dms_per_shard`` when given.
    """
    require_positive_int(n_beams, "n_beams")
    require_positive(duration_s, "duration_s")
    chunk = grid.n_dms
    if memory_bytes is not None:
        chunk = dm_chunk_for_memory(setup, grid, memory_bytes)
    if max_dms_per_shard is not None:
        require_positive_int(max_dms_per_shard, "max_dms_per_shard")
        chunk = min(chunk, max_dms_per_shard)
    total_samples = int(round(duration_s * setup.samples_per_second))
    n_batches = max(1, ceil_div(total_samples, setup.samples_per_batch))
    shards = []
    for beam in range(n_beams):
        for dm_start in range(0, grid.n_dms, chunk):
            dm_count = min(chunk, grid.n_dms - dm_start)
            for batch in range(n_batches):
                shards.append(
                    Shard(
                        beam=beam,
                        dm_start=dm_start,
                        dm_count=dm_count,
                        batch=batch,
                        samples=setup.samples_per_batch,
                    )
                )
    return tuple(shards)
