"""The unified execution facade: one request type, one ``execute`` call.

The repository grew four overlapping ways to launch dedispersion work —
``DedispersionKernel.execute`` (one beam, one batch),
``BatchedDedispersionKernel.execute`` / ``execute_sharded`` (multi-beam,
whole or sharded launches), ``ExecutionEngine.execute_numeric`` (the
scheduler's own decomposition) and ``DedispersionPlan.execute`` /
``StreamingDedispersion`` (tuned plans over chunked streams).  Each had
its own argument spelling and none composed: downstream consumers (the
candidate search of :mod:`repro.search`, notably) would have had to
special-case every one.

:class:`ExecutionRequest` normalises all of them into a single value
object and :func:`execute` dispatches on its resolved *mode*:

=============  ===========================================================
mode           meaning
=============  ===========================================================
``kernel``     one beam, one batch: ``(channels, t)`` input through a
               configured kernel (or a tuned plan's kernel)
``batched``    a ``(beams, channels, t)`` batch, all beams sharing one
               delay table, one launch per beam
``sharded``    the same batch split into :class:`~repro.sched.shard.Shard`
               work units, stitched bit-identically
``streaming``  a tuned plan driven over an iterable of
               :class:`~repro.astro.telescope.StreamChunk` objects
``fused``      streaming, but each chunk is dedispersed and searched
               slab-by-slab through a
               :class:`~repro.search.detect.MatchedFilterDetector`
               (``detector=``) without materialising the chunk's
               DM×time plane — see :mod:`repro.run.fused`
=============  ===========================================================

``mode="auto"`` (the default) infers the mode from what the request
carries: chunks imply ``streaming``, shards imply ``sharded``, 3-D input
implies ``batched``, 2-D input implies ``kernel``.  The legacy
entrypoints survive as thin warn-once shims that build the equivalent
request, so old call sites keep working while new code — and everything
inside this package — speaks only the facade.

Every request lands in the metrics registry
(``repro_run_requests_total{mode=...}`` plus a
``repro_run_execute_seconds`` wall-time observation) under a
``run.execute`` tracer span.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.errors import ValidationError
from repro.obs import get_registry, span

#: The accepted values of :attr:`ExecutionRequest.mode`.
EXECUTION_MODES = (
    "auto",
    "kernel",
    "batched",
    "sharded",
    "streaming",
    "fused",
)


@dataclass(frozen=True)
class ExecutionRequest:
    """Everything needed to launch dedispersion work, normalised.

    Exactly one *executor source* must be supplied:

    * ``plan`` — a tuned :class:`~repro.core.plan.DedispersionPlan`; its
      kernel and precomputed delay table are used (``delay_table`` must
      then be omitted);
    * ``kernel`` — a configured
      :class:`~repro.opencl_sim.kernel.DedispersionKernel` plus an
      explicit ``delay_table``;
    * ``config`` — a bare
      :class:`~repro.core.config.KernelConfiguration` plus
      ``delay_table``; the kernel is generated on the fly (``samples``
      defaults to the shard length in sharded mode, otherwise to the
      widest batch the input and delay table allow).

    ``data`` carries the channelised input: ``(channels, t)`` for kernel
    mode, ``(beams, channels, t)`` for batched/sharded mode, and
    ``None`` for streaming mode (the chunks carry their own payloads).
    Exactly one *input source* feeds a request: ``data``, ``chunks``, or
    ``scenario`` — a :class:`~repro.scenarios.catalog.Scenario` (realized
    against the plan's setup and grid) or an already-realized
    :class:`~repro.scenarios.catalog.RealizedScenario`, whose chunks are
    streamed exactly as if they had been passed via ``chunks=``.
    ``out``, when given, must be a float32 array of the output shape —
    the same contract every executor in the stack enforces.  ``backend``
    selects the kernel executor
    (``"tiled"``/``"vectorized"``/``"channel_tile"``/``"auto"``,
    ``None`` meaning auto) for every launch of the request.

    ``detector`` — a
    :class:`~repro.search.detect.MatchedFilterDetector` — turns a
    chunked request into **fused** mode: each chunk is dedispersed and
    searched one DM-tile slab at a time and only candidates are kept
    (the result's ``output`` is ``None``; the per-chunk detail,
    including metered ``peak_bytes``, is in ``chunk_results``).
    ``dm_tile`` optionally pins the slab height (a multiple of the
    configuration's ``tile_dms``; default ≈ one sixteenth of the grid).
    """

    data: np.ndarray | None = None
    delay_table: np.ndarray | None = None
    config: Any = None
    kernel: Any = None
    plan: Any = None
    shards: tuple = ()
    chunks: Iterable | None = None
    scenario: Any = None
    samples: int | None = None
    mode: str = "auto"
    backend: str | None = None
    detector: Any = None
    dm_tile: int | None = None
    out: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ValidationError(
                f"unknown execution mode {self.mode!r}; expected one of "
                f"{', '.join(EXECUTION_MODES)}"
            )
        sources = [
            name
            for name, value in (
                ("plan", self.plan),
                ("kernel", self.kernel),
                ("config", self.config),
            )
            if value is not None
        ]
        if len(sources) != 1:
            raise ValidationError(
                "an ExecutionRequest needs exactly one of plan=, kernel= "
                f"or config=; got {sources or 'none'}"
            )
        if self.plan is not None and self.delay_table is not None:
            raise ValidationError(
                "delay_table= conflicts with plan= (the plan carries its "
                "own precomputed delay table)"
            )
        if self.kernel is not None and self.delay_table is None:
            raise ValidationError("kernel= requires an explicit delay_table=")
        if self.config is not None and self.delay_table is None:
            raise ValidationError("config= requires an explicit delay_table=")
        if self.scenario is not None:
            inputs = [
                name
                for name, value in (
                    ("data", self.data),
                    ("chunks", self.chunks),
                )
                if value is not None
            ]
            if inputs:
                raise ValidationError(
                    f"an ExecutionRequest needs exactly one input source; "
                    f"scenario= conflicts with {'/'.join(inputs)}="
                )
            if self.shards:
                raise ValidationError(
                    "scenario= conflicts with shards= (scenarios stream "
                    "chunks)"
                )
        if self.shards:
            object.__setattr__(self, "shards", tuple(self.shards))

    # ------------------------------------------------------------------
    def resolve_mode(self) -> str:
        """The concrete mode this request runs in.

        An explicit mode is validated against the request's contents;
        ``"auto"`` infers: chunks + detector → fused, chunks →
        streaming, shards → sharded, 3-D input → batched, 2-D input →
        kernel.
        """
        inferred = self._infer_mode()
        if self.mode == "auto":
            return inferred
        self._check_mode(self.mode)
        return self.mode

    def _infer_mode(self) -> str:
        if self.chunks is not None or self.scenario is not None:
            mode = "fused" if self.detector is not None else "streaming"
            self._check_mode(mode)
            return mode
        if self.shards:
            self._check_mode("sharded")
            return "sharded"
        if self.data is None:
            raise ValidationError(
                "an ExecutionRequest needs data= (or chunks= / scenario= "
                "for streaming mode)"
            )
        ndim = np.asarray(self.data).ndim
        if ndim == 3:
            self._check_mode("batched")
            return "batched"
        if ndim == 2:
            self._check_mode("kernel")
            return "kernel"
        raise ValidationError(
            f"request data must be 2-D (channels, t) or 3-D "
            f"(beams, channels, t); got {ndim} dimension(s)"
        )

    def _check_mode(self, mode: str) -> None:
        """Raise when the request's contents contradict ``mode``."""
        if mode not in ("fused",):
            if self.detector is not None and mode != "streaming":
                raise ValidationError(
                    "detector= is only valid in fused mode (a chunked "
                    f"request with a detector), but this request "
                    f"resolves to {mode!r} mode"
                )
            if self.dm_tile is not None:
                raise ValidationError(
                    "dm_tile= is only valid in fused mode (it sizes the "
                    "fused path's DM slabs)"
                )
        if mode in ("streaming", "fused"):
            if self.chunks is None and self.scenario is None:
                raise ValidationError(
                    f"{mode} mode requires chunks= or scenario="
                )
            if self.plan is None:
                raise ValidationError(
                    f"{mode} mode requires plan= (a tuned "
                    "DedispersionPlan supplies the kernel and overlap)"
                )
            if self.data is not None:
                raise ValidationError(
                    f"{mode} mode takes its input from chunks= or "
                    "scenario=, not data="
                )
            if self.out is not None:
                raise ValidationError(
                    f"{mode} mode allocates per-chunk outputs; out= is "
                    "not supported"
                )
            if mode == "fused" and self.detector is None:
                raise ValidationError(
                    "fused mode requires detector= (a "
                    "MatchedFilterDetector to fold each slab through)"
                )
            if mode == "streaming" and self.detector is not None:
                raise ValidationError(
                    "detector= turns a chunked request into fused mode; "
                    "drop mode='streaming' (or use mode='fused')"
                )
            return
        if self.chunks is not None:
            raise ValidationError(
                f"chunks= is only valid in streaming or fused mode "
                f"(of {', '.join(m for m in EXECUTION_MODES if m != 'auto')}), "
                f"but this request resolves to {mode!r} mode"
            )
        if self.scenario is not None:
            raise ValidationError(
                f"scenario= is only valid in streaming or fused mode "
                f"(of {', '.join(m for m in EXECUTION_MODES if m != 'auto')}), "
                f"but this request resolves to {mode!r} mode; pass "
                f"plan= and drop mode={mode!r} (or use mode='streaming') "
                f"to stream the scenario's chunks"
            )
        if mode == "sharded":
            if not self.shards:
                raise ValidationError("sharded mode requires shards=")
            if self.config is None:
                raise ValidationError(
                    "sharded mode requires config= (tuned configurations "
                    "need not tile remainder DM chunks, so the caller "
                    "chooses one that tiles every shard)"
                )
            return
        if self.shards:
            raise ValidationError("shards= is only valid in sharded mode")
        if self.data is None:
            raise ValidationError(f"{mode} mode requires data=")
        ndim = np.asarray(self.data).ndim
        wanted = 2 if mode == "kernel" else 3
        if ndim != wanted:
            raise ValidationError(
                f"{mode} mode requires {wanted}-D input, got {ndim}-D"
            )


@dataclass(frozen=True)
class ExecutionResult:
    """What one facade request produced.

    ``output`` is the dedispersed matrix — ``(n_dms, samples)`` for
    kernel mode, ``(beams, n_dms, samples)`` for batched/sharded mode,
    and the time-concatenated ``(n_dms, total_samples)`` matrix for
    streaming mode (chunk overlap makes the concatenation bit-identical
    to dedispersing the whole stream at once; the per-chunk detail is in
    ``chunk_results``).  Fused mode never materialises the plane —
    ``output`` is ``None`` and the per-chunk
    :class:`~repro.run.fused.FusedChunkResult` entries of
    ``chunk_results`` carry the candidates and metered ``peak_bytes``
    instead.
    """

    output: np.ndarray | None
    mode: str
    backend: str
    seconds: float
    launches: int
    chunk_results: tuple = ()
    #: The :class:`~repro.scenarios.catalog.RealizedScenario` a
    #: ``scenario=`` request streamed, carrying the ground truth the
    #: caller scores against; ``None`` for every other input source.
    scenario: Any = field(default=None, repr=False)

    @property
    def n_dms(self) -> int:
        """Trial-DM count of the output."""
        if self.output is None:
            raise ValidationError(
                "a fused-mode result has no output plane; read the "
                "candidates off chunk_results instead"
            )
        return self.output.shape[-2]

    @property
    def candidates(self) -> tuple:
        """Every candidate of a fused request, across all chunks."""
        return tuple(
            candidate
            for chunk in self.chunk_results
            for candidate in getattr(chunk, "candidates", ())
        )

    @property
    def peak_bytes(self) -> int:
        """Largest metered per-chunk working set of a fused request."""
        return max(
            (getattr(chunk, "peak_bytes", 0) for chunk in self.chunk_results),
            default=0,
        )


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def execute(request: ExecutionRequest) -> ExecutionResult:
    """Run one :class:`ExecutionRequest`; returns the result.

    The single blessed entrypoint of the execution stack: every mode,
    every backend, one call.  See the module docstring for the dispatch
    table.
    """
    if not isinstance(request, ExecutionRequest):
        raise ValidationError(
            f"execute() takes an ExecutionRequest, got "
            f"{type(request).__name__}"
        )
    from repro.opencl_sim.backend import normalize_backend

    mode = request.resolve_mode()
    backend = normalize_backend(request.backend)
    runner = _RUNNERS[mode]
    with span("run.execute", mode=mode, backend=backend):
        start = time.perf_counter()
        output, launches, chunk_results, extras = runner(request)
        elapsed = time.perf_counter() - start
    registry = get_registry()
    registry.counter("repro_run_requests_total", mode=mode).inc()
    registry.histogram("repro_run_execute_seconds", mode=mode).observe(
        elapsed
    )
    return ExecutionResult(
        output=output,
        mode=mode,
        backend=backend,
        seconds=elapsed,
        launches=launches,
        chunk_results=chunk_results,
        **extras,
    )


def _kernel_for(request: ExecutionRequest, channels: int, samples: int):
    """The configured kernel a non-plan request executes with."""
    if request.kernel is not None:
        return request.kernel
    from repro.opencl_sim.codegen import build_kernel

    return build_kernel(request.config, channels, samples)


def _kernel_samples(request: ExecutionRequest, time_axis: int) -> int:
    """Output batch length for a kernel/batched request.

    An explicit ``samples=`` wins; a supplied kernel fixes its own batch;
    otherwise the widest batch the input and delay table allow.
    """
    if request.samples is not None:
        return int(request.samples)
    if request.kernel is not None:
        return request.kernel.samples
    available = time_axis - int(np.asarray(request.delay_table).max(initial=0))
    if available <= 0:
        raise ValidationError(
            "input too short for the delay table (no output samples "
            "remain after the maximum delay)"
        )
    return available


def _run_kernel(request: ExecutionRequest):
    if request.plan is not None:
        kernel = request.plan.kernel
        delays = request.plan.delays
    else:
        delays = request.delay_table
        data = np.asarray(request.data)
        kernel = _kernel_for(
            request, data.shape[0], _kernel_samples(request, data.shape[1])
        )
    output = kernel._execute(
        request.data, delays, out=request.out, backend=request.backend
    )
    return output, 1, (), {}


def _run_batched(request: ExecutionRequest):
    from repro.opencl_sim.batch import BatchedDedispersionKernel

    data = np.asarray(request.data)
    if request.plan is not None:
        kernel = request.plan.kernel
        delays = request.plan.delays
    else:
        delays = request.delay_table
        kernel = _kernel_for(
            request, data.shape[1], _kernel_samples(request, data.shape[2])
        )
    batched = BatchedDedispersionKernel(kernel=kernel, n_beams=data.shape[0])
    output = batched.execute(
        data, delays, out=request.out, backend=request.backend
    )
    return output, data.shape[0], (), {}


def _run_sharded(request: ExecutionRequest):
    from repro.opencl_sim.batch import _execute_sharded

    output = _execute_sharded(
        request.config,
        request.data,
        request.delay_table,
        request.shards,
        out=request.out,
        backend=request.backend,
    )
    return output, len(request.shards), (), {}


def _resolve_scenario(request: ExecutionRequest):
    """Realize a ``scenario=`` input against the request's plan.

    Accepts a :class:`~repro.scenarios.catalog.Scenario` (realized here
    against the plan's setup and grid) or an already-realized
    :class:`~repro.scenarios.catalog.RealizedScenario` (whose setup must
    match the plan's).  Imported lazily — the facade sits below
    :mod:`repro.scenarios` in the layering and must not import it at
    module scope.
    """
    from repro.scenarios.catalog import RealizedScenario, Scenario

    scenario = request.scenario
    if isinstance(scenario, Scenario):
        return scenario.realize(request.plan.setup, request.plan.grid)
    if isinstance(scenario, RealizedScenario):
        if scenario.setup.name != request.plan.setup.name:
            raise ValidationError(
                f"scenario was realized for setup "
                f"{scenario.setup.name!r}, but the plan targets "
                f"{request.plan.setup.name!r}"
            )
        return scenario
    raise ValidationError(
        f"scenario= takes a Scenario or RealizedScenario, got "
        f"{type(scenario).__name__}"
    )


def _run_streaming(request: ExecutionRequest):
    from repro.pipeline.streaming import StreamingDedispersion

    extras: dict = {}
    chunks = request.chunks
    if request.scenario is not None:
        realized = _resolve_scenario(request)
        extras["scenario"] = realized
        chunks = realized.chunks
    stream = StreamingDedispersion(request.plan, backend=request.backend)
    results = tuple(stream.process(chunk) for chunk in chunks)
    if not results:
        raise ValidationError("streaming request carried no chunks")
    output = np.concatenate([r.output for r in results], axis=1)
    return output, len(results), results, extras


def _run_fused(request: ExecutionRequest):
    from repro.run.fused import run_fused_chunk

    extras: dict = {}
    chunks = request.chunks
    if request.scenario is not None:
        realized = _resolve_scenario(request)
        extras["scenario"] = realized
        chunks = realized.chunks
    results = tuple(
        run_fused_chunk(
            request.plan,
            chunk,
            request.detector,
            backend=request.backend,
            dm_tile=request.dm_tile,
        )
        for chunk in chunks
    )
    if not results:
        raise ValidationError("fused request carried no chunks")
    launches = sum(r.launches for r in results)
    return None, launches, results, extras


_RUNNERS = {
    "kernel": _run_kernel,
    "batched": _run_batched,
    "sharded": _run_sharded,
    "streaming": _run_streaming,
    "fused": _run_fused,
}
