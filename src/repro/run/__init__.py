"""Unified execution facade for the dedispersion stack.

One request type (:class:`ExecutionRequest`), one result type
(:class:`ExecutionResult`), one call (:func:`execute`).  See
:mod:`repro.run.facade` for the dispatch table and
``docs/api.md`` for the migration guide from the legacy entrypoints.

The fused dedisperse→detect fast path lives in :mod:`repro.run.fused`
(reached via ``detector=`` / ``mode="fused"`` requests); its
deterministic peak-memory meter is :class:`repro.run.peak.MemoryAccount`.
"""

from repro.run.facade import (
    EXECUTION_MODES,
    ExecutionRequest,
    ExecutionResult,
    execute,
)
from repro.run.fused import FusedChunkResult, run_fused_chunk
from repro.run.peak import MemoryAccount

__all__ = [
    "EXECUTION_MODES",
    "ExecutionRequest",
    "ExecutionResult",
    "FusedChunkResult",
    "MemoryAccount",
    "execute",
    "run_fused_chunk",
]
