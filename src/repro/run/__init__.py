"""Unified execution facade for the dedispersion stack.

One request type (:class:`ExecutionRequest`), one result type
(:class:`ExecutionResult`), one call (:func:`execute`).  See
:mod:`repro.run.facade` for the dispatch table and
``docs/api.md`` for the migration guide from the legacy entrypoints.
"""

from repro.run.facade import (
    EXECUTION_MODES,
    ExecutionRequest,
    ExecutionResult,
    execute,
)

__all__ = [
    "EXECUTION_MODES",
    "ExecutionRequest",
    "ExecutionResult",
    "execute",
]
