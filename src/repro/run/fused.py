"""Fused dedisperse→detect execution of one stream chunk.

The staged streaming path materialises each chunk's full ``(n_dms,
samples)`` dedispersion plane, hands it to the detector, and lets the
detector build its own float64 copy — three plane-scale arrays alive at
once before a single S/N is computed.  At Apertif scale that working set
is what decides whether a beam fits on a node, not arithmetic.

This module fuses the two stages instead: the chunk is dedispersed one
*DM-tile slab* at a time, and each freshly-computed slab is folded
through :meth:`~repro.search.detect.MatchedFilterDetector.detect_slabs`
and dropped before the next is produced.  The candidate list is
bit-identical to the staged path (dedispersion is independent per DM
row; every detector statistic is row-local), but the peak working set is
one slab's, not the plane's.

Slabs are cut along the trial-DM axis in multiples of the
configuration's ``tile_dms`` — the NDRange of
:mod:`repro.opencl_sim.ndrange` requires exact work-group tiling, and
every plan's DM grid is already a whole number of tiles, so any
tile-multiple slab size launches cleanly.

Peak working-set bytes are metered by a
:class:`~repro.run.peak.MemoryAccount` with the same charging rules the
staged path uses, land in :attr:`FusedChunkResult.peak_bytes`, and are
exported as the ``repro_run_peak_bytes{path="fused"}`` histogram; each
chunk also counts toward ``repro_pipeline_chunks_total`` exactly as the
staged pipeline's chunks do, since a fused chunk is the same pipeline
stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import PipelineError, ValidationError
from repro.obs import get_registry, span
from repro.run.peak import MemoryAccount


@dataclass(frozen=True)
class FusedChunkResult:
    """What fusing dedispersion and detection over one chunk produced.

    Unlike :class:`~repro.pipeline.streaming.ChunkResult` there is no
    ``output`` plane — not materialising it is the point.  The chunk's
    contribution to the search is its ``candidates`` (already shifted
    onto the global stream timeline and labelled with the beam);
    ``peak_bytes`` is the metered high-water working set of the fused
    dedisperse→detect pass; ``launches`` counts the per-slab kernel
    launches.  ``simulated_seconds`` / ``realtime`` carry the same
    modelled dedispersion cost the staged pipeline reports, and
    ``detect_seconds`` the measured detection wall time, so the
    streaming search's virtual clock works identically on both paths.
    """

    beam_index: int
    sequence: int
    candidates: tuple
    simulated_seconds: float
    detect_seconds: float
    peak_bytes: int
    launches: int
    realtime: bool


def resolve_dm_tile(n_dms: int, tile_dms: int, dm_tile: int | None) -> int:
    """The slab height (trial DMs) a fused pass cuts the grid into.

    Must be a positive multiple of the configuration's ``tile_dms`` so
    every slab launches with exact work-group tiling.  The default aims
    for roughly sixteen slabs — small enough that the slab working set
    is a fraction of the plane's, large enough that per-slab Python and
    launch overhead stays negligible — rounded up to a tile multiple.
    """
    if dm_tile is None:
        target = max(1, -(-n_dms // 16))
        return tile_dms * max(1, -(-target // tile_dms))
    tile = int(dm_tile)
    if tile <= 0 or tile % tile_dms != 0:
        raise ValidationError(
            f"dm_tile must be a positive multiple of the configuration's "
            f"tile_dms={tile_dms}, got {dm_tile}"
        )
    return tile


def run_fused_chunk(
    plan,
    chunk,
    detector,
    backend: str | None = None,
    dm_tile: int | None = None,
) -> FusedChunkResult:
    """Dedisperse and detect one stream chunk slab-by-slab.

    ``plan`` is a tuned :class:`~repro.core.plan.DedispersionPlan`,
    ``chunk`` a :class:`~repro.astro.telescope.StreamChunk` whose payload
    matches the plan's batch, ``detector`` a
    :class:`~repro.search.detect.MatchedFilterDetector`.  Chunk
    validation is identical to the staged pipeline's: payload length
    must equal the plan batch and the overlap must cover the plan's
    maximum delay, checked per chunk so a misconfigured front-end fails
    loudly.
    """
    if chunk.samples != plan.samples:
        raise PipelineError(
            f"chunk payload of {chunk.samples} samples does not match "
            f"the plan batch of {plan.samples}"
        )
    max_delay = int(plan.delays.max(initial=0))
    if chunk.overlap < max_delay:
        raise PipelineError(
            f"chunk overlap {chunk.overlap} < required maximum delay "
            f"{max_delay}"
        )
    n_dms = plan.delays.shape[0]
    tile = resolve_dm_tile(n_dms, plan.config.tile_dms, dm_tile)
    account = MemoryAccount()
    launches = 0
    produce_s = 0.0

    def slabs():
        """Yield float32 DM-tile slabs, each dropped before the next."""
        nonlocal launches, produce_s
        for d0 in range(0, n_dms, tile):
            start = time.perf_counter()
            slab = plan.kernel._execute(
                chunk.data, plan.delays[d0 : d0 + tile], backend=backend
            )
            produce_s += time.perf_counter() - start
            launches += 1
            account.charge(slab.nbytes)
            yield slab
            account.release(slab.nbytes)

    labels = {"device": plan.device.name, "setup": plan.setup.name}
    with span(
        "run.fused_chunk",
        beam=chunk.beam_index,
        sequence=chunk.sequence,
        **labels,
    ):
        start = time.perf_counter()
        candidates = detector.detect_slabs(
            slabs(),
            plan.grid.values,
            time_offset=chunk.sequence * plan.samples,
            beam=chunk.beam_index,
            account=account,
        )
        detect_s = time.perf_counter() - start - produce_s

    seconds = plan.predict().seconds
    chunk_seconds = plan.samples / plan.setup.samples_per_second
    registry = get_registry()
    registry.counter("repro_pipeline_chunks_total", **labels).inc()
    if seconds > 0.0:
        registry.gauge(
            "repro_pipeline_realtime_margin", stage="fused", **labels
        ).set(chunk_seconds / seconds)
    registry.histogram("repro_run_peak_bytes", path="fused").observe(
        float(account.peak_bytes)
    )
    return FusedChunkResult(
        beam_index=chunk.beam_index,
        sequence=chunk.sequence,
        candidates=tuple(candidates),
        simulated_seconds=seconds,
        detect_seconds=max(detect_s, 0.0),
        peak_bytes=account.peak_bytes,
        launches=launches,
        realtime=seconds <= chunk_seconds,
    )


def staged_peak_bytes(n_dms: int, samples: int) -> int:
    """The staged path's *modelled* plane-scale peak, for comparison.

    float32 kernel plane + the detector's float64 plane, centred copy
    and cumulative sum, plus one width's boxcar sums and S/N — the
    arrays a staged chunk holds live simultaneously under the same
    accounting rules the fused path meters.  ``bench_fused.py`` prints
    the measured number; this closed form documents where it comes from.
    """
    f32 = 4 * n_dms * samples
    f64 = 8 * n_dms * samples
    csum = 8 * n_dms * (samples + 1)
    per_width = 2 * 8 * n_dms * samples  # sums + snr (width-1 bound)
    return f32 + f64 + f64 + csum + per_width


__all__ = [
    "FusedChunkResult",
    "resolve_dm_tile",
    "run_fused_chunk",
    "staged_peak_bytes",
]
