"""Deterministic peak-memory accounting for the execution stack.

Peak working-set bytes — not FLOPs — decide whether a survey node can
hold a search pipeline in memory, so the fused-vs-staged comparison of
``benchmarks/bench_fused.py`` needs a number that is (a) deterministic
(no allocator jitter) and (b) computed by the same rules on both paths.
:class:`MemoryAccount` provides it: every major array the
dedisperse→detect stage materialises is *charged* when it comes to life
and *released* when the stage drops it, and the account's high-water
mark is the per-chunk ``peak_bytes`` reported in chunk records and the
``repro_run_peak_bytes`` metric.

Only plane-scale arrays are tracked (the DM×time plane and the
detector's derived arrays); per-trial scalar vectors are noise at any
realistic scale and are left out on both paths alike.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np


class MemoryAccount:
    """A charge/release ledger with a high-water mark.

    ``charge``/``release`` move the current balance; ``peak_bytes`` is
    the maximum the balance ever reached.  ``track`` charges an array's
    ``nbytes`` and returns the array, for charging at the allocation
    site in one expression.
    """

    def __init__(self) -> None:
        self.current_bytes = 0
        self.peak_bytes = 0

    def charge(self, nbytes: int) -> None:
        self.current_bytes += int(nbytes)
        if self.current_bytes > self.peak_bytes:
            self.peak_bytes = self.current_bytes

    def release(self, nbytes: int) -> None:
        self.current_bytes -= int(nbytes)

    def track(self, array: np.ndarray) -> np.ndarray:
        """Charge ``array.nbytes``; returns the array unchanged."""
        self.charge(array.nbytes)
        return array

    @contextmanager
    def transient(self, nbytes: int):
        """Charge ``nbytes`` for the duration of a ``with`` block."""
        self.charge(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)


@contextmanager
def transient(account: MemoryAccount | None, nbytes: int):
    """:meth:`MemoryAccount.transient`, tolerating ``account=None``."""
    if account is None:
        yield
        return
    with account.transient(nbytes):
        yield


def charge(account: MemoryAccount | None, array: np.ndarray) -> np.ndarray:
    """Charge ``array`` to ``account`` if one is given; returns it."""
    if account is not None:
        account.charge(array.nbytes)
    return array


def release(account: MemoryAccount | None, array: np.ndarray) -> None:
    """Release ``array`` from ``account`` if one is given."""
    if account is not None:
        account.release(array.nbytes)
