"""Export experiment results to CSV and JSON.

Downstream users plot the reproduced figures with their own tools; these
writers serialise any :class:`~repro.experiments.base.ExperimentResult`
losslessly — series experiments become one column per legend entry, table
experiments keep their headers.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from typing import TYPE_CHECKING

from repro.errors import ValidationError

if TYPE_CHECKING:  # avoid a repro.analysis <-> repro.experiments cycle
    from repro.experiments.base import ExperimentResult


def result_to_csv(result: ExperimentResult) -> str:
    """Serialise an experiment result to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if result.series:
        writer.writerow([result.x_label] + list(result.series))
        for i, x in enumerate(result.x_values):
            writer.writerow(
                [x] + [result.series[label][i] for label in result.series]
            )
    elif result.headers:
        writer.writerow(result.headers)
        for row in result.rows:
            writer.writerow(row)
    else:
        raise ValidationError(
            f"experiment {result.experiment_id} has no data to export"
        )
    return buffer.getvalue()


def result_to_json(result: ExperimentResult, indent: int = 2) -> str:
    """Serialise an experiment result to a JSON document."""
    payload: dict = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "notes": result.notes,
    }
    if result.series:
        payload["x_label"] = result.x_label
        payload["x_values"] = list(result.x_values)
        payload["series"] = {
            label: list(values) for label, values in result.series.items()
        }
    if result.headers:
        payload["headers"] = list(result.headers)
        payload["rows"] = [list(row) for row in result.rows]
    return json.dumps(payload, indent=indent)


def write_result(
    result: ExperimentResult,
    directory: str | Path,
    formats: tuple[str, ...] = ("csv", "json"),
) -> list[Path]:
    """Write an experiment result into ``directory``; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for fmt in formats:
        if fmt == "csv":
            text = result_to_csv(result)
        elif fmt == "json":
            text = result_to_json(result)
        else:
            raise ValidationError(f"unknown export format {fmt!r}")
        path = directory / f"{result.experiment_id}.{fmt}"
        path.write_text(text)
        written.append(path)
    return written


def load_result_json(path: str | Path) -> dict:
    """Load a previously exported JSON result (round-trip helper)."""
    return json.loads(Path(path).read_text())
