"""The roofline model (Williams, Waterman & Patterson — paper ref. [4]).

The paper frames dedispersion's memory-boundedness in roofline terms: with
arithmetic intensity below every device's ridge point, performance is
bandwidth-limited.  These helpers place simulated kernels on each device's
roofline so experiments can report which roof binds and how close the
kernel sits to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.hardware.device import DeviceSpec
from repro.hardware.metrics import KernelMetrics


def roofline_gflops(device: DeviceSpec, arithmetic_intensity: float) -> float:
    """Roofline ceiling (GFLOP/s) at a given intensity (FLOP/byte)."""
    if arithmetic_intensity <= 0:
        raise ValidationError("arithmetic intensity must be positive")
    return min(
        device.peak_gflops,
        arithmetic_intensity * device.peak_bandwidth_gbs,
    )


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under a device's roofline."""

    device_name: str
    arithmetic_intensity: float
    achieved_gflops: float
    roof_gflops: float
    ridge_point: float

    @property
    def memory_bound(self) -> bool:
        """Whether the kernel sits on the bandwidth-sloped part of the roof."""
        return self.arithmetic_intensity < self.ridge_point

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the roofline ceiling."""
        return self.achieved_gflops / self.roof_gflops

    def summary(self) -> str:
        """One-line rendering used by reports."""
        region = "memory" if self.memory_bound else "compute"
        return (
            f"{self.device_name}: AI {self.arithmetic_intensity:.2f} "
            f"({region} region, ridge {self.ridge_point:.1f}), "
            f"{self.achieved_gflops:.1f} of {self.roof_gflops:.1f} GFLOP/s "
            f"({self.roof_fraction:.0%} of roof)"
        )


def roofline_point(device: DeviceSpec, metrics: KernelMetrics) -> RooflinePoint:
    """Place a simulated kernel under its device's roofline."""
    ai = metrics.arithmetic_intensity
    return RooflinePoint(
        device_name=device.name,
        arithmetic_intensity=ai,
        achieved_gflops=metrics.gflops,
        roof_gflops=roofline_gflops(device, ai),
        ridge_point=device.machine_balance,
    )
