"""Analysis utilities: roofline model and report rendering."""

from repro.analysis.roofline import RooflinePoint, roofline_gflops, roofline_point
from repro.analysis.reporting import (
    format_table,
    format_series,
    format_histogram,
)
from repro.analysis.portability import (
    PortabilityReport,
    performance_portability,
    portability_report,
)
from repro.analysis.export import (
    result_to_csv,
    result_to_json,
    write_result,
    load_result_json,
)

__all__ = [
    "RooflinePoint",
    "roofline_gflops",
    "roofline_point",
    "format_table",
    "format_series",
    "format_histogram",
    "result_to_csv",
    "result_to_json",
    "write_result",
    "load_result_json",
    "PortabilityReport",
    "performance_portability",
    "portability_report",
]
