"""Performance portability: quantifying the paper's central thesis.

The paper argues auto-tuning makes dedispersion "portable between
different platforms and different observational setups" (Sec. VII).  The
performance-portability literature has since standardised a metric for
exactly this claim — Pennycook, Sewall & Lee (2016)::

    PP(a, p, H) = |H| / sum_{i in H} 1 / e_i(a, p)

the harmonic mean over platforms ``H`` of the application's efficiency
``e_i`` on each platform, and 0 if any platform is unsupported.  Here the
natural efficiency is *application efficiency*: achieved GFLOP/s over the
best-known (exhaustively tuned) GFLOP/s on that platform.

This module computes PP for three deployment strategies —

* **auto-tuned per platform** (PP = 1 by construction: the definition's
  calibration point),
* **one fixed configuration per platform** (the paper's Figs. 13-14
  baseline),
* **one single configuration everywhere** (the strawman the paper
  dismisses as "too low to provide a fair comparison" — quantified here)

— turning the paper's qualitative portability argument into one number
per observational setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fixed import best_fixed_configuration
from repro.core.tuner import TuningResult
from repro.errors import ValidationError


def performance_portability(efficiencies: list[float]) -> float:
    """The Pennycook harmonic-mean PP over per-platform efficiencies.

    Efficiencies are in (0, 1]; any unsupported platform (efficiency 0 or
    missing) makes PP zero, per the metric's definition.
    """
    if not efficiencies:
        raise ValidationError("need at least one platform")
    for e in efficiencies:
        if not 0.0 <= e <= 1.0 + 1e-9:
            raise ValidationError(f"efficiency {e} outside [0, 1]")
    if any(e == 0.0 for e in efficiencies):
        return 0.0
    return len(efficiencies) / sum(1.0 / e for e in efficiencies)


@dataclass(frozen=True)
class PortabilityReport:
    """PP of the three deployment strategies on one setup."""

    setup_name: str
    n_dms: int
    platforms: tuple[str, ...]
    pp_tuned: float
    pp_fixed_per_platform: float
    pp_single_configuration: float
    #: The single configuration used for the strawman (best total GFLOP/s
    #: among configurations meaningful on every platform), or None when no
    #: configuration runs everywhere.
    single_configuration: object | None

    def summary(self) -> str:
        """One-line rendering."""
        single = (
            f"{self.pp_single_configuration:.2f}"
            if self.single_configuration is not None
            else "0 (no universal configuration)"
        )
        return (
            f"{self.setup_name} ({self.n_dms} DMs, "
            f"{len(self.platforms)} platforms): "
            f"PP tuned 1.00, fixed-per-platform "
            f"{self.pp_fixed_per_platform:.2f}, single-config {single}"
        )


def portability_report(
    sweeps_by_platform: dict[str, dict[int, TuningResult]],
    n_dms: int,
) -> PortabilityReport:
    """Compute the three PP values from per-platform instance sweeps.

    ``sweeps_by_platform`` maps a platform name to its instance sweeps
    (n_dms -> :class:`TuningResult`, as produced by
    ``AutoTuner.tune_instances``); the per-platform *fixed* configuration
    is derived across those instances, matching the Figs. 13-14 method.
    """
    if not sweeps_by_platform:
        raise ValidationError("need at least one platform")
    platforms = tuple(sweeps_by_platform)
    for name, sweeps in sweeps_by_platform.items():
        if n_dms not in sweeps:
            raise ValidationError(
                f"platform {name} has no sweep at {n_dms} DMs"
            )

    best = {
        name: sweeps[n_dms].best.gflops
        for name, sweeps in sweeps_by_platform.items()
    }

    # Strategy 2: the best fixed configuration per platform.
    fixed_eff = []
    for name, sweeps in sweeps_by_platform.items():
        fixed = best_fixed_configuration(sweeps)
        achieved = fixed.per_instance_gflops.get(n_dms, 0.0)
        fixed_eff.append(min(achieved / best[name], 1.0))

    # Strategy 3: one configuration for every platform AND every instance
    # (the same universality the per-platform fixed baseline must satisfy,
    # extended across devices — the paper's "single fixed configuration
    # that works on all accelerators and observational setups").
    common = None
    for name, sweeps in sweeps_by_platform.items():
        for result in sweeps.values():
            configs = {s.config for s in result.samples}
            common = configs if common is None else (common & configs)
    single_config = None
    pp_single = 0.0
    if common:
        def total(config) -> float:
            return sum(
                result.find(config).gflops
                for sweeps in sweeps_by_platform.values()
                for result in sweeps.values()
            )

        single_config = max(common, key=total)
        single_eff = [
            min(
                sweeps_by_platform[name][n_dms].find(single_config).gflops
                / best[name],
                1.0,
            )
            for name in platforms
        ]
        pp_single = performance_portability(single_eff)

    setup_name = next(iter(sweeps_by_platform.values()))[n_dms].setup.name
    return PortabilityReport(
        setup_name=setup_name,
        n_dms=n_dms,
        platforms=platforms,
        pp_tuned=1.0,
        pp_fixed_per_platform=performance_portability(fixed_eff),
        pp_single_configuration=pp_single,
        single_configuration=single_config,
    )
