"""Plain-text rendering of tables, figure series, and histograms.

Every experiment driver reports through these helpers so benchmark output
("the same rows/series the paper reports") is uniform and diffable.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ValidationError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an ASCII table with right-padded columns."""
    if not headers:
        raise ValidationError("headers must be non-empty")
    str_rows = [[str(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    precision: int = 1,
) -> str:
    """Render figure-style data: one x column, one column per series.

    This is the textual equivalent of the paper's line plots: ``series``
    maps a legend label (device name) to its y-values over ``x_values``
    (DM counts).
    """
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {label!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [x] + [
            f"{series[label][i]:.{precision}f}" for label in series
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_lineplot(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    height: int = 16,
    width: int = 64,
) -> str:
    """Render figure series as an ASCII scatter/line chart.

    The textual cousin of the paper's gnuplot figures: y is scaled to the
    series maximum, x spreads the given values uniformly (the paper's
    figures use a log-2 DM axis, and the instances are powers of two, so
    uniform spacing reproduces that).  Each series is drawn with its own
    glyph; collisions show the later series.
    """
    if not series:
        raise ValidationError("series must be non-empty")
    for label, values in series.items():
        if len(values) != len(x_values):
            raise ValidationError(
                f"series {label!r} has {len(values)} points, "
                f"expected {len(x_values)}"
            )
    if height < 2 or width < 8:
        raise ValidationError("height must be >= 2 and width >= 8")
    y_max = max(max(values) for values in series.values())
    if y_max <= 0:
        y_max = 1.0
    glyphs = "ox+*#@%&"
    n = len(x_values)
    grid = [[" "] * width for _ in range(height)]
    for s_index, (label, values) in enumerate(series.items()):
        glyph = glyphs[s_index % len(glyphs)]
        for i, value in enumerate(values):
            col = int(round(i * (width - 1) / max(n - 1, 1)))
            row = height - 1 - int(round(value / y_max * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = glyph
    lines = [title] if title else []
    for r, row in enumerate(grid):
        y_value = y_max * (height - 1 - r) / (height - 1)
        lines.append(f"{y_value:10.1f} |" + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12 + f"{x_values[0]} .. {x_values[-1]} ({x_label})"
    )
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}"
        for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def format_histogram(
    counts: np.ndarray,
    bin_edges: np.ndarray,
    title: str = "",
    width: int = 50,
) -> str:
    """Render a histogram as horizontal ASCII bars (the Fig. 10 view)."""
    counts = np.asarray(counts)
    bin_edges = np.asarray(bin_edges)
    if counts.size + 1 != bin_edges.size:
        raise ValidationError("bin_edges must have len(counts)+1 entries")
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * max(int(round(width * count / peak)), 1 if count else 0)
        lines.append(
            f"{bin_edges[i]:8.1f}-{bin_edges[i + 1]:8.1f} |{bar} {int(count)}"
        )
    return "\n".join(lines)
