"""Search strategies that retire the exhaustive auto-tuning sweep.

The paper tunes by brute force: "the algorithm is executed for every
meaningful combination" (Sec. IV-A).  At fleet scale that sweep is the
dominant cost of :class:`repro.service.TuningService`, so this module
offers pluggable :class:`SearchStrategy` implementations that find the
same optimum while *measuring* only a small fraction of the space:

* :class:`ExhaustiveSearch` — the paper's sweep behind the strategy
  interface (the baseline every other strategy is judged against);
* :class:`SuccessiveHalving` — race a prior-seeded entry cohort on
  progressively larger DM sub-instances, promoting only the survivors
  to full fidelity.  The fidelity axis is ``n_dms`` rather than the
  sample count: performance landscapes of neighbouring DM counts share
  their optima (the same observation warm-start tuning exploits), while
  truncating the time dimension distorts the overhead/compute balance;
* :class:`ModelGuidedSearch` — rank the space with a *degraded*
  hardware model (staging and coalescing-overhead terms disabled, so
  its predictions are cheap and deliberately imperfect), measure the
  top slice, re-rank the remainder with a local quadratic surrogate
  fitted to the measurements, and finish with greedy neighbour ascent.

Every strategy returns a :class:`SearchOutcome` whose ``evaluations``
field is the search cost in *full-evaluation equivalents* (a rung at a
quarter of the DM trials costs 0.25), which is what
``benchmarks/bench_tune.py`` audits against the <=10%-of-candidates
target.  Each strategy also declares its ablatable ``COMPONENTS`` so the
:mod:`repro.tune.ablation` driver can toggle one heuristic at a time.
"""

from __future__ import annotations

import dataclasses
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.astro.dm_trials import DMTrialGrid
from repro.astro.observation import ObservationSetup
from repro.core.config import KernelConfiguration
from repro.core.tuner import AutoTuner, ConfigurationSample, TuningResult
from repro.errors import TuningError
from repro.hardware.device import DeviceSpec
from repro.hardware.model import PerformanceModel
from repro.obs import get_registry, span
from repro.utils.intmath import ceil_div
from repro.utils.rng import RandomStreams


@dataclass(frozen=True)
class SearchOutcome:
    """What one strategy run produced and what it cost.

    ``evaluations`` is the cost in full-evaluation equivalents (reduced
    sub-instance measurements count fractionally); ``measurements`` is
    the number of distinct model simulations actually executed.  The
    embedded :class:`~repro.core.tuner.TuningResult` contains only
    full-fidelity samples, so every downstream consumer (service cache,
    persistence, statistics) sees the same shape a sweep produces.
    """

    strategy: str
    result: TuningResult
    evaluations: float
    measurements: int
    space_size: int

    @property
    def best(self) -> ConfigurationSample:
        """The optimum found by the search."""
        return self.result.best

    @property
    def fraction_evaluated(self) -> float:
        """Search cost as a fraction of the exhaustive sweep."""
        if self.space_size <= 0:
            return 0.0
        return self.evaluations / self.space_size

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        return (
            f"{self.strategy}: {self.best.config.describe()} "
            f"{self.best.gflops:.1f} GFLOP/s "
            f"({self.evaluations:.1f}/{self.space_size} evals, "
            f"{100.0 * self.fraction_evaluated:.1f}% of space)"
        )


def prior_scores(
    device: DeviceSpec,
    setup: ObservationSetup,
    grid: DMTrialGrid,
    configs: list[KernelConfiguration],
    samples: int | None = None,
) -> dict[KernelConfiguration, float]:
    """Cheap performance prior: the hardware model with its second-order
    terms (shared-memory staging, coalescing overhead) disabled.

    Deliberately *not* the full model — strategies that consulted the
    exact simulator would be measuring, not predicting.  Empirically the
    degraded model still places the true optimum within the top few
    percent of its ranking on every paper instance, which is all a
    prior needs.
    """
    model = PerformanceModel(
        device,
        setup,
        grid,
        enable_staging=False,
        enable_coalescing_overhead=False,
    )
    return {
        c: model.simulate(c, samples=samples, validate=False).gflops
        for c in configs
    }


class _CostedEvaluator:
    """Caches model evaluations and accounts their fractional cost.

    Full-instance evaluations cost 1; an evaluation on a DM sub-instance
    of ``n`` trials costs ``n / n_dms``.  Repeats of the same
    ``(config, n)`` coordinate are free (cached), and only full-fidelity
    samples enter the final :class:`TuningResult`.
    """

    def __init__(self, tuner: AutoTuner, grid: DMTrialGrid, samples: int):
        self.device = tuner.device
        self.setup = tuner.setup
        self.grid = grid
        self.samples = samples
        self._models: dict[int, PerformanceModel] = {
            grid.n_dms: PerformanceModel(self.device, self.setup, grid)
        }
        self._cache: dict[
            tuple[KernelConfiguration, int], ConfigurationSample
        ] = {}
        self.full_cache: dict[KernelConfiguration, ConfigurationSample] = {}
        self.cost = 0.0

    @property
    def measurements(self) -> int:
        return len(self._cache)

    def _model_for(self, n_dms: int) -> PerformanceModel:
        model = self._models.get(n_dms)
        if model is None:
            sub = DMTrialGrid(
                n_dms=n_dms, first=self.grid.first, step=self.grid.step
            )
            model = PerformanceModel(self.device, self.setup, sub)
            self._models[n_dms] = model
        return model

    def rounded_n_dms(self, config: KernelConfiguration, n_dms: int) -> int:
        """Smallest sub-instance >= ``n_dms`` that ``config`` tiles exactly
        (the memory model requires ``tile_dms`` to divide the DM count)."""
        n = ceil_div(n_dms, config.tile_dms) * config.tile_dms
        return min(self.grid.n_dms, n)

    def evaluate_at(
        self, config: KernelConfiguration, n_dms: int
    ) -> ConfigurationSample:
        n = self.rounded_n_dms(config, n_dms)
        key = (config, n)
        sample = self._cache.get(key)
        if sample is None:
            metrics = self._model_for(n).simulate(
                config, samples=self.samples, validate=False
            )
            sample = ConfigurationSample(
                config=config, gflops=metrics.gflops, metrics=metrics
            )
            self._cache[key] = sample
            self.cost += n / self.grid.n_dms
            if n == self.grid.n_dms:
                self.full_cache[config] = sample
        return sample

    def evaluate(self, config: KernelConfiguration) -> ConfigurationSample:
        return self.evaluate_at(config, self.grid.n_dms)

    def result(self) -> TuningResult:
        if not self.full_cache:
            raise TuningError(
                "search measured no configuration at full fidelity"
            )
        return TuningResult(
            device=self.device,
            setup=self.setup,
            grid=self.grid,
            samples=tuple(self.full_cache.values()),
        )


def _axis_values(
    configs: list[KernelConfiguration],
) -> dict[str, list[int]]:
    axes: dict[str, set[int]] = {"wt": set(), "wd": set(), "et": set(), "ed": set()}
    for c in configs:
        axes["wt"].add(c.work_items_time)
        axes["wd"].add(c.work_items_dm)
        axes["et"].add(c.elements_time)
        axes["ed"].add(c.elements_dm)
    return {axis: sorted(values) for axis, values in axes.items()}


def _notch_neighbours(
    config: KernelConfiguration,
    axis_values: dict[str, list[int]],
    config_set: set[KernelConfiguration],
) -> list[KernelConfiguration]:
    """Meaningful configurations one notch away in a single parameter."""
    current = {
        "wt": config.work_items_time,
        "wd": config.work_items_dm,
        "et": config.elements_time,
        "ed": config.elements_dm,
    }
    neighbours: list[KernelConfiguration] = []
    for axis, values in axis_values.items():
        if current[axis] not in values:
            continue
        idx = values.index(current[axis])
        for step in (-1, 1):
            j = idx + step
            if not 0 <= j < len(values):
                continue
            params = dict(current)
            params[axis] = values[j]
            candidate = KernelConfiguration(
                work_items_time=params["wt"],
                work_items_dm=params["wd"],
                elements_time=params["et"],
                elements_dm=params["ed"],
            )
            if candidate in config_set:
                neighbours.append(candidate)
    return neighbours


def _greedy_ascent(
    evaluator: _CostedEvaluator,
    configs: list[KernelConfiguration],
    budget: int,
) -> None:
    """Full-fidelity best-neighbour ascent from the best measured point."""
    if budget <= 0 or not evaluator.full_cache:
        return
    axis_values = _axis_values(configs)
    config_set = set(configs)
    start = evaluator.measurements
    current = max(evaluator.full_cache.values(), key=lambda s: s.gflops)
    improved = True
    while improved and evaluator.measurements - start < budget:
        improved = False
        best_neighbour = None
        for neighbour in _notch_neighbours(
            current.config, axis_values, config_set
        ):
            if evaluator.measurements - start >= budget:
                break
            sample = evaluator.evaluate(neighbour)
            if best_neighbour is None or sample.gflops > best_neighbour.gflops:
                best_neighbour = sample
        if best_neighbour is not None and best_neighbour.gflops > current.gflops:
            current = best_neighbour
            improved = True


class SearchStrategy(ABC):
    """Interface every tuning search implements.

    :meth:`search` wraps the strategy-specific :meth:`_search` with the
    ``tune.search`` span and the ``repro_tune_*`` metrics, so every
    strategy is metered identically no matter who invokes it (CLI,
    service, study driver, benchmarks).
    """

    #: Registry name of the strategy (also its CLI spelling).
    name: ClassVar[str] = ""

    #: Ablatable component -> boolean field that disables it.
    COMPONENTS: ClassVar[dict[str, str]] = {}

    def search(
        self,
        tuner: AutoTuner,
        grid: DMTrialGrid,
        samples: int | None = None,
    ) -> SearchOutcome:
        """Run the search on one (device, setup, instance) combination."""
        with span(
            "tune.search",
            strategy=self.name,
            device=tuner.device.name,
            setup=tuner.setup.name,
            n_dms=grid.n_dms,
        ) as search_span:
            outcome = self._search(tuner, grid, samples)
            search_span.attributes["space_size"] = outcome.space_size
            search_span.attributes["measurements"] = outcome.measurements
            registry = get_registry()
            labels = {
                "strategy": self.name,
                "device": tuner.device.name,
                "setup": tuner.setup.name,
            }
            registry.counter("repro_tune_searches_total", **labels).inc()
            registry.counter(
                "repro_tune_measurements_total", **labels
            ).inc(outcome.measurements)
            registry.histogram(
                "repro_tune_fraction_evaluated_ratio", strategy=self.name
            ).observe(outcome.fraction_evaluated)
            registry.gauge("repro_tune_best_gflops", **labels).set(
                outcome.best.gflops
            )
            return outcome

    @abstractmethod
    def _search(
        self,
        tuner: AutoTuner,
        grid: DMTrialGrid,
        samples: int | None,
    ) -> SearchOutcome:
        """Strategy-specific search body (no instrumentation)."""

    @property
    def components(self) -> tuple[str, ...]:
        """Names of this strategy's ablatable components."""
        return tuple(self.COMPONENTS)

    def without(self, component: str) -> "SearchStrategy":
        """A copy of this strategy with one component disabled."""
        field = self.COMPONENTS.get(component)
        if field is None:
            raise TuningError(
                f"strategy {self.name!r} has no ablatable component "
                f"{component!r}; known: {', '.join(sorted(self.COMPONENTS))}"
            )
        return dataclasses.replace(self, **{field: False})

    # ------------------------------------------------------------------
    def _meaningful(
        self, tuner: AutoTuner, grid: DMTrialGrid, samples: int
    ) -> list[KernelConfiguration]:
        configs = tuner.space(grid, samples).meaningful()
        if not configs:
            raise TuningError(
                f"search space is empty for {tuner.device.name}/"
                f"{tuner.setup.name}/{grid.n_dms} DMs"
            )
        return configs


@dataclass(frozen=True)
class ExhaustiveSearch(SearchStrategy):
    """The paper's sweep behind the strategy interface (the baseline)."""

    name: ClassVar[str] = "exhaustive"

    def _search(
        self,
        tuner: AutoTuner,
        grid: DMTrialGrid,
        samples: int | None,
    ) -> SearchOutcome:
        result = tuner.tune(grid, samples=samples)
        n = result.n_configurations
        return SearchOutcome(
            strategy=self.name,
            result=result,
            evaluations=float(n),
            measurements=n,
            space_size=n,
        )


@dataclass(frozen=True)
class SuccessiveHalving(SearchStrategy):
    """Race configurations on progressively larger DM sub-instances.

    An entry cohort (the prior's top ``entry_fraction`` of the space, or
    a seeded random cohort when the prior is ablated) is evaluated on a
    small DM sub-instance, the best ``1/eta`` survive to the next rung,
    and the finalists are measured at full fidelity.  Per-config rung
    sizes are rounded up to the config's own ``tile_dms`` multiple so
    every sub-instance tiles exactly.  A short full-fidelity neighbour
    ascent (``refine``) polishes the winner.
    """

    eta: int = 4
    rungs: int = 2
    entry_fraction: float = 0.25
    entry_floor: int = 24
    keep_floor: int = 16
    seed: int = 0
    prior: bool = True
    racing: bool = True
    refine: bool = True

    name: ClassVar[str] = "halving"
    COMPONENTS: ClassVar[dict[str, str]] = {
        "prior": "prior",
        "racing": "racing",
        "refine": "refine",
    }

    def __post_init__(self) -> None:
        if self.eta < 2:
            raise TuningError("eta must be >= 2")
        if self.rungs < 1:
            raise TuningError("rungs must be >= 1")
        if not 0.0 < self.entry_fraction <= 1.0:
            raise TuningError("entry_fraction must be in (0, 1]")

    def _search(
        self,
        tuner: AutoTuner,
        grid: DMTrialGrid,
        samples: int | None,
    ) -> SearchOutcome:
        s = tuner.setup.samples_per_batch if samples is None else samples
        configs = self._meaningful(tuner, grid, s)
        n = len(configs)
        evaluator = _CostedEvaluator(tuner, grid, s)

        entry = min(n, max(self.entry_floor, round(self.entry_fraction * n)))
        if self.prior:
            scores = prior_scores(
                tuner.device, tuner.setup, grid, configs, samples=s
            )
            entrants = sorted(
                configs, key=lambda c: (-scores[c], c.as_tuple())
            )[:entry]
        else:
            pool = sorted(configs, key=lambda c: c.as_tuple())
            rng = RandomStreams(self.seed).python("halving-entry")
            entrants = rng.sample(pool, entry)

        if self.racing:
            for k in range(self.rungs):
                n_k = max(1, grid.n_dms // self.eta ** (self.rungs - k))
                if n_k >= grid.n_dms:
                    break
                scored = [
                    (evaluator.evaluate_at(c, n_k).gflops, c)
                    for c in entrants
                ]
                keep = max(self.keep_floor, ceil_div(len(entrants), self.eta))
                scored.sort(key=lambda t: (-t[0], t[1].as_tuple()))
                entrants = [c for _, c in scored[:keep]]

        for config in entrants:
            evaluator.evaluate(config)
        if self.refine:
            _greedy_ascent(evaluator, configs, max(8, round(0.01 * n)))

        return SearchOutcome(
            strategy=self.name,
            result=evaluator.result(),
            evaluations=evaluator.cost,
            measurements=evaluator.measurements,
            space_size=n,
        )


def _surrogate_features(config: KernelConfiguration) -> list[float]:
    """Quadratic feature vector over the log2 parameters."""
    logs = [
        math.log2(config.work_items_time),
        math.log2(config.work_items_dm),
        math.log2(config.elements_time),
        math.log2(config.elements_dm),
    ]
    features = [1.0] + logs
    for i in range(4):
        for j in range(i, 4):
            features.append(logs[i] * logs[j])
    return features


def _surrogate_rank(
    measured: list[ConfigurationSample],
    unmeasured: list[KernelConfiguration],
) -> list[KernelConfiguration]:
    """Unmeasured configs ranked by a ridge-regularised quadratic fit."""
    if len(measured) < 3 or not unmeasured:
        return list(unmeasured)
    x = np.asarray(
        [_surrogate_features(s.config) for s in measured], dtype=np.float64
    )
    y = np.asarray([s.gflops for s in measured], dtype=np.float64)
    gram = x.T @ x + 1e-3 * np.eye(x.shape[1])
    weights = np.linalg.solve(gram, x.T @ y)
    candidates = np.asarray(
        [_surrogate_features(c) for c in unmeasured], dtype=np.float64
    )
    predictions = candidates @ weights
    order = sorted(
        range(len(unmeasured)),
        key=lambda i: (-predictions[i], unmeasured[i].as_tuple()),
    )
    return [unmeasured[i] for i in order]


@dataclass(frozen=True)
class ModelGuidedSearch(SearchStrategy):
    """Prior-ranked measurement with surrogate refinement and ascent.

    The degraded hardware model ranks the whole space for free; the top
    slice of the ranking is measured; a quadratic surrogate fitted to
    those measurements re-ranks the remainder and the most promising
    predictions are measured too; greedy neighbour ascent spends the
    rest of the budget escaping any residual prior bias.  Total
    measurements are capped at ``max(min_measurements, fraction * N)``.
    """

    fraction: float = 0.08
    min_measurements: int = 20
    seed: int = 0
    prior: bool = True
    surrogate: bool = True
    ascent: bool = True

    name: ClassVar[str] = "model-guided"
    COMPONENTS: ClassVar[dict[str, str]] = {
        "prior": "prior",
        "surrogate": "surrogate",
        "ascent": "ascent",
    }

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise TuningError("fraction must be in (0, 1]")
        if self.min_measurements < 3:
            raise TuningError("min_measurements must be >= 3")

    def _search(
        self,
        tuner: AutoTuner,
        grid: DMTrialGrid,
        samples: int | None,
    ) -> SearchOutcome:
        s = tuner.setup.samples_per_batch if samples is None else samples
        configs = self._meaningful(tuner, grid, s)
        n = len(configs)
        evaluator = _CostedEvaluator(tuner, grid, s)

        budget = min(n, max(self.min_measurements, round(self.fraction * n)))
        refine_budget = max(2, round(0.2 * budget)) if self.surrogate else 0
        climb_budget = max(4, round(0.2 * budget)) if self.ascent else 0
        measure_budget = max(1, budget - refine_budget - climb_budget)

        if self.prior:
            scores = prior_scores(
                tuner.device, tuner.setup, grid, configs, samples=s
            )
            ranked = sorted(
                configs, key=lambda c: (-scores[c], c.as_tuple())
            )
        else:
            ranked = sorted(configs, key=lambda c: c.as_tuple())
            RandomStreams(self.seed).python("model-guided").shuffle(ranked)
        for config in ranked[:measure_budget]:
            evaluator.evaluate(config)

        if self.surrogate and refine_budget > 0:
            unmeasured = [
                c for c in configs if c not in evaluator.full_cache
            ]
            for config in _surrogate_rank(
                list(evaluator.full_cache.values()), unmeasured
            )[:refine_budget]:
                evaluator.evaluate(config)

        if self.ascent:
            _greedy_ascent(evaluator, configs, climb_budget)

        return SearchOutcome(
            strategy=self.name,
            result=evaluator.result(),
            evaluations=evaluator.cost,
            measurements=evaluator.measurements,
            space_size=n,
        )


#: Registry of built-in strategies by CLI/service name.
STRATEGIES: dict[str, type[SearchStrategy]] = {
    ExhaustiveSearch.name: ExhaustiveSearch,
    SuccessiveHalving.name: SuccessiveHalving,
    ModelGuidedSearch.name: ModelGuidedSearch,
}


def strategy_accepts(name: str, parameter: str) -> bool:
    """Whether the named strategy's constructor takes ``parameter``."""
    cls = STRATEGIES.get(name)
    if cls is None:
        return False
    return parameter in {f.name for f in dataclasses.fields(cls)}


def build_strategy(
    spec: "SearchStrategy | str", **kwargs
) -> SearchStrategy:
    """Resolve a strategy instance from a name (or pass one through)."""
    if isinstance(spec, SearchStrategy):
        if kwargs:
            raise TuningError(
                "cannot combine a strategy instance with keyword overrides"
            )
        return spec
    cls = STRATEGIES.get(str(spec))
    if cls is None:
        raise TuningError(
            f"unknown search strategy {spec!r}; "
            f"known: {', '.join(sorted(STRATEGIES))}"
        )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise TuningError(
            f"bad arguments for strategy {spec!r}: {exc}"
        ) from None
