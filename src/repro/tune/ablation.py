"""Ablation driver: how much does each search heuristic contribute?

For one strategy, runs the full configuration and then one variant per
ablatable component (``strategy.without(component)``) across a matrix of
(device, setup, n_dms) instances, judging each against the exhaustive
optimum.  The report quantifies two things per variant: how often it
still finds the optimum (match rate) and what it spends (fraction of
the candidate space evaluated) — i.e. both the quality contribution and
the cost contribution of every heuristic.

Exposed on the command line as ``repro ablate``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.astro.dm_trials import DMTrialGrid
from repro.core.tuner import AutoTuner
from repro.errors import TuningError
from repro.hardware.catalog import device_by_name
from repro.obs import get_registry, span
from repro.tune.strategy import SearchStrategy, build_strategy
from repro.tune.study import _setup_by_name

#: Relative GFLOP/s slack when judging an optimum match (ties only).
_MATCH_RTOL = 1e-9


@dataclass(frozen=True)
class AblationEntry:
    """Aggregate quality/cost of one strategy variant."""

    variant: str  # "full" or "no-<component>"
    runs: int
    matches: int
    mean_fraction: float
    max_fraction: float
    mean_best_gflops: float

    @property
    def match_rate(self) -> float:
        return self.matches / self.runs if self.runs else 0.0


@dataclass(frozen=True)
class AblationReport:
    """Every variant's aggregate, plus the instance matrix it covered."""

    strategy: str
    devices: tuple[str, ...]
    setups: tuple[str, ...]
    instances: tuple[int, ...]
    entries: tuple[AblationEntry, ...]

    @property
    def full(self) -> AblationEntry:
        """The un-ablated strategy's row."""
        for entry in self.entries:
            if entry.variant == "full":
                return entry
        raise TuningError("ablation report has no 'full' entry")

    def render(self) -> str:
        """Human-readable comparison table."""
        header = (
            f"ablation of {self.strategy!r} over "
            f"{len(self.devices)} device(s) x {len(self.setups)} setup(s) "
            f"x {len(self.instances)} instance(s)"
        )
        rows = [("variant", "match", "mean cost", "max cost", "mean best")]
        for entry in self.entries:
            rows.append(
                (
                    entry.variant,
                    f"{entry.matches}/{entry.runs}",
                    f"{100.0 * entry.mean_fraction:.1f}%",
                    f"{100.0 * entry.max_fraction:.1f}%",
                    f"{entry.mean_best_gflops:.1f}",
                )
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(rows[0]))
        ]
        lines = [header]
        for i, row in enumerate(rows):
            lines.append(
                "  " + "  ".join(
                    cell.ljust(width) for cell, width in zip(row, widths)
                )
            )
            if i == 0:
                lines.append("  " + "  ".join("-" * width for width in widths))
        return "\n".join(lines)

    def to_document(self) -> dict:
        return {
            "strategy": self.strategy,
            "devices": list(self.devices),
            "setups": list(self.setups),
            "instances": list(self.instances),
            "entries": [
                {
                    "variant": e.variant,
                    "runs": e.runs,
                    "matches": e.matches,
                    "match_rate": e.match_rate,
                    "mean_fraction": e.mean_fraction,
                    "max_fraction": e.max_fraction,
                    "mean_best_gflops": e.mean_best_gflops,
                }
                for e in self.entries
            ],
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_document(), indent=1, sort_keys=True)
        )
        return path


def run_ablation(
    devices,
    setups,
    instances,
    strategy: "SearchStrategy | str" = "model-guided",
    dm_first: float = 0.0,
    dm_step: float = 0.25,
    **strategy_kwargs,
) -> AblationReport:
    """Toggle each component of ``strategy`` and quantify its contribution.

    ``devices`` / ``setups`` are name sequences, ``instances`` DM counts.
    The exhaustive optimum of every instance is computed once and shared
    by all variants.
    """
    base = build_strategy(strategy, **strategy_kwargs)
    if not base.COMPONENTS:
        raise TuningError(
            f"strategy {base.name!r} has no ablatable components"
        )
    variants: list[tuple[str, SearchStrategy]] = [("full", base)]
    variants.extend(
        (f"no-{component}", base.without(component))
        for component in base.components
    )

    matrix = [
        (device_by_name(d), _setup_by_name(s), int(n))
        for d in devices
        for s in setups
        for n in instances
    ]
    if not matrix:
        raise TuningError("ablation needs at least one instance")

    with span(
        "tune.ablate", strategy=base.name, runs=len(matrix) * len(variants)
    ):
        optima: list[tuple[AutoTuner, DMTrialGrid, float]] = []
        for device, setup, n_dms in matrix:
            tuner = AutoTuner(device, setup)
            grid = DMTrialGrid(n_dms=n_dms, first=dm_first, step=dm_step)
            optima.append((tuner, grid, tuner.tune(grid).best.gflops))

        entries = []
        for label, variant in variants:
            matches = 0
            fractions: list[float] = []
            bests: list[float] = []
            for tuner, grid, optimum in optima:
                outcome = variant.search(tuner, grid)
                fractions.append(outcome.fraction_evaluated)
                bests.append(outcome.best.gflops)
                if outcome.best.gflops >= optimum * (1.0 - _MATCH_RTOL):
                    matches += 1
            entries.append(
                AblationEntry(
                    variant=label,
                    runs=len(optima),
                    matches=matches,
                    mean_fraction=sum(fractions) / len(fractions),
                    max_fraction=max(fractions),
                    mean_best_gflops=sum(bests) / len(bests),
                )
            )
    get_registry().counter("repro_tune_ablations_total").inc()
    return AblationReport(
        strategy=base.name,
        devices=tuple(str(d) for d in devices),
        setups=tuple(str(s) for s in setups),
        instances=tuple(int(n) for n in instances),
        entries=tuple(entries),
    )
