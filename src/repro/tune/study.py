"""Declarative tuning studies: config -> runs -> persisted results.

A *study* evaluates one or more search strategies across a matrix of
(device, setup, n_dms) instances, optionally expanding ``kwargs_ranges``
into strategy-parameter grids (the pykeen ablation idiom: a fixed
``kwargs`` dict plus per-parameter range specifications).  Results are
JSON documents with the same schema-versioning discipline as sweeps and
run ledgers, and — because every stochastic choice draws from
:class:`~repro.utils.rng.RandomStreams` seeded by
``derive_seed(study seed, run id)`` — the same config and seed always
persist to *byte-identical* documents.

Range specifications (``kwargs_ranges[name]``)::

    {"values": [24, 48]}                                  # explicit list
    {"type": "int", "low": 2, "high": 4}                  # 2, 3, 4
    {"type": "int", "low": 2, "high": 16, "scale": "power_two"}  # 2,4,8,16
    {"type": "float", "low": 0.05, "high": 0.2, "steps": 4}      # linspace
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.astro.dm_trials import DMTrialGrid
from repro.core.persistence import MODEL_REVISION
from repro.core.tuner import AutoTuner
from repro.errors import SchemaVersionError, TuningError, ValidationError
from repro.hardware.catalog import device_by_name
from repro.obs import get_registry, span
from repro.tune.strategy import build_strategy, strategy_accepts
from repro.utils.rng import derive_seed

#: Format version written into every study document.
STUDY_SCHEMA_VERSION: int = 1

#: Schema versions :func:`load_study` still understands.
SUPPORTED_STUDY_SCHEMAS: tuple[int, ...] = (1,)

#: Relative GFLOP/s slack when judging an optimum match (ties only).
_MATCH_RTOL = 1e-9


def _expand_one(name: str, spec: dict) -> list:
    """One range specification -> the list of values it denotes."""
    if not isinstance(spec, dict):
        raise ValidationError(
            f"kwargs_ranges[{name!r}] must be a dict, got {type(spec).__name__}"
        )
    if "values" in spec:
        values = list(spec["values"])
        if not values:
            raise ValidationError(f"kwargs_ranges[{name!r}] has no values")
        return values
    kind = spec.get("type")
    if kind not in ("int", "float"):
        raise ValidationError(
            f"kwargs_ranges[{name!r}] needs 'values' or 'type' int/float"
        )
    try:
        low, high = spec["low"], spec["high"]
    except KeyError as exc:
        raise ValidationError(
            f"kwargs_ranges[{name!r}] is missing {exc.args[0]!r}"
        ) from None
    if high < low:
        raise ValidationError(
            f"kwargs_ranges[{name!r}]: empty range [{low}, {high}]"
        )
    if kind == "int":
        if spec.get("scale") == "power_two":
            value, values = int(low), []
            while value <= high:
                values.append(value)
                value *= 2
            if not values:
                raise ValidationError(
                    f"kwargs_ranges[{name!r}]: no powers of two in range"
                )
            return values
        step = int(spec.get("step", 1))
        if step < 1:
            raise ValidationError(f"kwargs_ranges[{name!r}]: step must be >= 1")
        return list(range(int(low), int(high) + 1, step))
    steps = int(spec.get("steps", 2))
    if steps < 2:
        raise ValidationError(f"kwargs_ranges[{name!r}]: steps must be >= 2")
    width = (float(high) - float(low)) / (steps - 1)
    return [float(low) + i * width for i in range(steps)]


def expand_kwargs_ranges(kwargs_ranges: dict) -> list[dict]:
    """Cross-product of all range axes, deterministically ordered."""
    variants: list[dict] = [{}]
    for name in sorted(kwargs_ranges):
        values = _expand_one(name, kwargs_ranges[name])
        variants = [
            dict(variant, **{name: value})
            for variant in variants
            for value in values
        ]
    return variants


@dataclass(frozen=True)
class StudyConfig:
    """Declarative description of one study (JSON-serialisable).

    ``kwargs`` are fixed strategy arguments applied to every run;
    ``kwargs_ranges`` expand into a grid of per-run overrides.  With
    ``baseline=True`` every instance is also swept exhaustively so each
    run records whether it matched the true optimum.
    """

    title: str
    devices: tuple[str, ...]
    setups: tuple[str, ...]
    instances: tuple[int, ...]
    strategies: tuple[str, ...] = ("model-guided",)
    kwargs: dict = field(default_factory=dict)
    kwargs_ranges: dict = field(default_factory=dict)
    baseline: bool = True
    seed: int = 0
    dm_first: float = 0.0
    dm_step: float = 0.25

    def __post_init__(self) -> None:
        for name in ("devices", "setups", "instances", "strategies"):
            value = tuple(getattr(self, name))
            if not value:
                raise ValidationError(f"study {name} must be non-empty")
            object.__setattr__(self, name, value)
        if not self.title:
            raise ValidationError("study title must be non-empty")
        if self.seed < 0:
            raise ValidationError("study seed must be non-negative")

    def variants(self) -> list[dict]:
        """The expanded per-run strategy-kwarg grid."""
        return expand_kwargs_ranges(self.kwargs_ranges)

    def to_dict(self) -> dict:
        return {
            "title": self.title,
            "devices": list(self.devices),
            "setups": list(self.setups),
            "instances": list(self.instances),
            "strategies": list(self.strategies),
            "kwargs": dict(self.kwargs),
            "kwargs_ranges": dict(self.kwargs_ranges),
            "baseline": self.baseline,
            "seed": self.seed,
            "dm_first": self.dm_first,
            "dm_step": self.dm_step,
        }

    @classmethod
    def from_dict(cls, document: dict) -> "StudyConfig":
        try:
            return cls(
                title=document["title"],
                devices=tuple(document["devices"]),
                setups=tuple(document["setups"]),
                instances=tuple(document["instances"]),
                strategies=tuple(
                    document.get("strategies", ("model-guided",))
                ),
                kwargs=dict(document.get("kwargs", {})),
                kwargs_ranges=dict(document.get("kwargs_ranges", {})),
                baseline=bool(document.get("baseline", True)),
                seed=int(document.get("seed", 0)),
                dm_first=float(document.get("dm_first", 0.0)),
                dm_step=float(document.get("dm_step", 0.25)),
            )
        except KeyError as exc:
            raise ValidationError(
                f"study config is missing {exc.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class StudyRun:
    """One (instance, strategy, kwargs-variant) cell of a study."""

    run_id: str
    device: str
    setup: str
    n_dms: int
    strategy: str
    kwargs: dict
    seed: int


@dataclass(frozen=True)
class StudyRunResult:
    """Outcome of one study run (plus the baseline comparison)."""

    run: StudyRun
    best_config: tuple[int, int, int, int]
    best_gflops: float
    evaluations: float
    measurements: int
    space_size: int
    matched_optimum: bool | None
    optimum_gflops: float | None

    @property
    def fraction_evaluated(self) -> float:
        if self.space_size <= 0:
            return 0.0
        return self.evaluations / self.space_size


@dataclass(frozen=True)
class StudyResult:
    """A completed study: the config plus every run's result."""

    config: StudyConfig
    results: tuple[StudyRunResult, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise TuningError("study produced no runs")

    def for_strategy(self, strategy: str) -> tuple[StudyRunResult, ...]:
        return tuple(r for r in self.results if r.run.strategy == strategy)

    @property
    def match_rate(self) -> float:
        """Fraction of baseline-compared runs that found the optimum."""
        judged = [r for r in self.results if r.matched_optimum is not None]
        if not judged:
            return 0.0
        return sum(r.matched_optimum for r in judged) / len(judged)

    @property
    def mean_fraction_evaluated(self) -> float:
        return sum(r.fraction_evaluated for r in self.results) / len(
            self.results
        )

    def summary(self) -> str:
        lines = [
            f"study {self.config.title!r}: {len(self.results)} runs, "
            f"match rate {100.0 * self.match_rate:.1f}%, "
            f"mean cost {100.0 * self.mean_fraction_evaluated:.1f}% of space"
        ]
        for result in self.results:
            mark = (
                "=" if result.matched_optimum
                else ("x" if result.matched_optimum is not None else "?")
            )
            lines.append(
                f"  [{mark}] {result.run.run_id}: "
                f"{result.best_gflops:.1f} GFLOP/s, "
                f"{100.0 * result.fraction_evaluated:.1f}% evaluated"
            )
        return "\n".join(lines)


def _run_id(
    device: str, setup: str, n_dms: int, strategy: str, variant: dict
) -> str:
    suffix = "".join(
        f"+{name}={variant[name]}" for name in sorted(variant)
    )
    return f"{device}:{setup}:{n_dms}:{strategy}{suffix}"


def run_study(config: StudyConfig) -> StudyResult:
    """Execute every run of a study, deterministically.

    Runs are ordered (device, setup, n_dms, strategy, variant) exactly as
    declared; each run's strategy seed is ``derive_seed(config.seed,
    run_id)`` so re-running the same config reproduces every result
    bit-for-bit.
    """
    registry = get_registry()
    variants = config.variants()
    results: list[StudyRunResult] = []
    with span("tune.study", title=config.title) as study_span:
        for device_name in config.devices:
            device = device_by_name(device_name)
            for setup_name in config.setups:
                setup = _setup_by_name(setup_name)
                tuner = AutoTuner(device, setup)
                for n_dms in config.instances:
                    grid = DMTrialGrid(
                        n_dms=n_dms,
                        first=config.dm_first,
                        step=config.dm_step,
                    )
                    optimum = (
                        tuner.tune(grid).best.gflops
                        if config.baseline else None
                    )
                    for strategy_name in config.strategies:
                        for variant in variants:
                            run = _build_run(
                                config, device_name, setup_name, n_dms,
                                strategy_name, variant,
                            )
                            strategy = build_strategy(
                                strategy_name, **run.kwargs
                            )
                            outcome = strategy.search(tuner, grid)
                            matched = (
                                None if optimum is None else bool(
                                    outcome.best.gflops
                                    >= optimum * (1.0 - _MATCH_RTOL)
                                )
                            )
                            results.append(
                                StudyRunResult(
                                    run=run,
                                    best_config=outcome.best.config.as_tuple(),
                                    best_gflops=outcome.best.gflops,
                                    evaluations=outcome.evaluations,
                                    measurements=outcome.measurements,
                                    space_size=outcome.space_size,
                                    matched_optimum=matched,
                                    optimum_gflops=optimum,
                                )
                            )
                            registry.counter("repro_tune_runs_total").inc()
        study_span.attributes["runs"] = len(results)
    registry.counter("repro_tune_studies_total").inc()
    return StudyResult(config=config, results=tuple(results))


def _build_run(
    config: StudyConfig,
    device: str,
    setup: str,
    n_dms: int,
    strategy: str,
    variant: dict,
) -> StudyRun:
    run_id = _run_id(device, setup, n_dms, strategy, variant)
    kwargs = {**config.kwargs, **variant}
    if strategy_accepts(strategy, "seed") and "seed" not in kwargs:
        kwargs["seed"] = derive_seed(config.seed, run_id)
    return StudyRun(
        run_id=run_id,
        device=device,
        setup=setup,
        n_dms=n_dms,
        strategy=strategy,
        kwargs=kwargs,
        seed=kwargs.get("seed", config.seed),
    )


def _setup_by_name(name: str):
    from repro.astro.observation import apertif, lofar

    table = {"apertif": apertif, "lofar": lofar}
    try:
        return table[name.lower()]()
    except KeyError:
        raise ValidationError(
            f"unknown setup {name!r} in study config; known: apertif, lofar"
        ) from None


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def study_to_document(result: StudyResult) -> dict:
    """Serialise a study result to a JSON-ready dictionary.

    Deliberately timestamp-free: the document is a pure function of the
    study config, the seed, and the model revision, which is what makes
    the byte-identical-persistence guarantee testable.
    """
    return {
        "schema": STUDY_SCHEMA_VERSION,
        "model_revision": MODEL_REVISION,
        "config": result.config.to_dict(),
        "results": [
            {
                "run": {
                    "run_id": r.run.run_id,
                    "device": r.run.device,
                    "setup": r.run.setup,
                    "n_dms": r.run.n_dms,
                    "strategy": r.run.strategy,
                    "kwargs": dict(r.run.kwargs),
                    "seed": r.run.seed,
                },
                "best_config": list(r.best_config),
                "best_gflops": r.best_gflops,
                "evaluations": r.evaluations,
                "measurements": r.measurements,
                "space_size": r.space_size,
                "matched_optimum": r.matched_optimum,
                "optimum_gflops": r.optimum_gflops,
            }
            for r in result.results
        ],
    }


def save_study(result: StudyResult, path: str | Path) -> Path:
    """Write a study document to ``path``; returns the path.

    ``sort_keys`` plus the timestamp-free document make the bytes a pure
    function of (config, seed, model revision).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(study_to_document(result), indent=1, sort_keys=True)
    )
    return path


def load_study(path: str | Path) -> StudyResult:
    """Load a persisted study document (no re-simulation)."""
    document = json.loads(Path(path).read_text())
    schema = document.get("schema")
    if schema not in SUPPORTED_STUDY_SCHEMAS:
        if isinstance(schema, int) and schema > max(SUPPORTED_STUDY_SCHEMAS):
            raise SchemaVersionError(
                f"unsupported study schema {schema!r}: this file was "
                f"written by a newer version of repro (this build reads "
                f"schemas up to {max(SUPPORTED_STUDY_SCHEMAS)})"
            )
        raise ValidationError(f"unsupported study schema {schema!r}")
    config = StudyConfig.from_dict(document["config"])
    results = []
    for entry in document["results"]:
        run_doc = entry["run"]
        run = StudyRun(
            run_id=run_doc["run_id"],
            device=run_doc["device"],
            setup=run_doc["setup"],
            n_dms=int(run_doc["n_dms"]),
            strategy=run_doc["strategy"],
            kwargs=dict(run_doc["kwargs"]),
            seed=int(run_doc["seed"]),
        )
        results.append(
            StudyRunResult(
                run=run,
                best_config=tuple(entry["best_config"]),
                best_gflops=float(entry["best_gflops"]),
                evaluations=float(entry["evaluations"]),
                measurements=int(entry["measurements"]),
                space_size=int(entry["space_size"]),
                matched_optimum=entry["matched_optimum"],
                optimum_gflops=entry["optimum_gflops"],
            )
        )
    return StudyResult(config=config, results=tuple(results))
