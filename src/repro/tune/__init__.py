"""Model-guided search and ablation: retiring the exhaustive sweep.

The paper's auto-tuner measures every meaningful configuration.  This
package finds the same optimum at a few percent of that cost:

* :mod:`repro.tune.strategy` — the :class:`SearchStrategy` interface and
  its implementations (:class:`ExhaustiveSearch`,
  :class:`SuccessiveHalving`, :class:`ModelGuidedSearch`);
* :mod:`repro.tune.study` — declarative studies (:class:`StudyConfig`
  with ``kwargs`` + ``kwargs_ranges``), executed by :func:`run_study`
  and persisted as schema-versioned JSON;
* :mod:`repro.tune.ablation` — the component-toggle driver behind
  ``repro ablate``.

``benchmarks/bench_tune.py`` audits the headline claim (>=95% optimum
match at <=10% of the candidate space) and writes ``BENCH_tune.json``.
See ``docs/tuning.md``.
"""

from repro.tune.strategy import (
    STRATEGIES,
    ExhaustiveSearch,
    ModelGuidedSearch,
    SearchOutcome,
    SearchStrategy,
    SuccessiveHalving,
    build_strategy,
    prior_scores,
    strategy_accepts,
)
from repro.tune.study import (
    STUDY_SCHEMA_VERSION,
    SUPPORTED_STUDY_SCHEMAS,
    StudyConfig,
    StudyResult,
    StudyRun,
    StudyRunResult,
    expand_kwargs_ranges,
    load_study,
    run_study,
    save_study,
    study_to_document,
)
from repro.tune.ablation import AblationEntry, AblationReport, run_ablation

__all__ = [
    # strategies
    "STRATEGIES",
    "SearchStrategy",
    "SearchOutcome",
    "ExhaustiveSearch",
    "SuccessiveHalving",
    "ModelGuidedSearch",
    "build_strategy",
    "strategy_accepts",
    "prior_scores",
    # studies
    "STUDY_SCHEMA_VERSION",
    "SUPPORTED_STUDY_SCHEMAS",
    "StudyConfig",
    "StudyRun",
    "StudyRunResult",
    "StudyResult",
    "expand_kwargs_ranges",
    "run_study",
    "save_study",
    "load_study",
    "study_to_document",
    # ablation
    "AblationEntry",
    "AblationReport",
    "run_ablation",
]
