"""Multi-beam batched kernel execution.

Sec. III-A: "without losing generality, in this paper we describe the case
in which there is a single input beam, but all results can be applied to
the case of multiple beams."  This module makes that concrete: a beams
axis is added as the third NDRange dimension (the OpenCL ``get_group_id(2)``
a production kernel would use), all beams share one delay table and one
configuration, and the functional executor processes the batch in one
launch.

The model-level counterpart is
:func:`repro.hardware.multibeam_metrics.simulate_multibeam` — per-beam
traffic scales linearly while the launch overhead and the delay table are
amortised across the batch, which is why batching beams helps most at
small per-beam workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.opencl_sim.kernel import DedispersionKernel, check_out
from repro.utils.validation import require_positive_int


def check_delay_table(delay_table, channels: int) -> np.ndarray:
    """Coerce and validate a delay table: ``(n_dms, channels)``, >= 0.

    Accepts anything :func:`np.asarray` does (lists included) and raises
    :class:`ValidationError` — not ``AttributeError``/``IndexError`` —
    on the wrong rank, channel count or negative shifts.
    """
    delay_table = np.asarray(delay_table)
    if delay_table.ndim != 2 or delay_table.shape[1] != channels:
        raise ValidationError(
            f"delay table must have shape (n_dms, {channels}), got "
            f"{delay_table.shape}"
        )
    if np.any(delay_table < 0):
        raise ValidationError("delay table must be non-negative")
    return delay_table


@dataclass(frozen=True)
class BatchedDedispersionKernel:
    """A dedispersion kernel applied to a batch of beams per launch."""

    kernel: DedispersionKernel
    n_beams: int

    def __post_init__(self) -> None:
        require_positive_int(self.n_beams, "n_beams")

    @property
    def global_size(self) -> tuple[int, int, int]:
        """The 3-D NDRange: (samples, DMs, beams)."""
        return (self.kernel.samples, 0, self.n_beams)  # DMs set per launch

    def execute(
        self,
        input_data: np.ndarray,
        delay_table: np.ndarray,
        out: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Dedisperse every beam of a ``(beams, channels, t)`` batch.

        Returns ``(beams, n_dms, samples)``.  All beams share the delay
        table — they observe through the same setup — exactly as the
        paper's multi-beam argument assumes.  ``backend`` overrides the
        wrapped kernel's executor for every beam of this launch.
        """
        input_data = np.asarray(input_data)
        delay_table = check_delay_table(delay_table, self.kernel.channels)
        if input_data.ndim != 3:
            raise ValidationError(
                "batched input must have shape (beams, channels, t), got "
                f"{input_data.shape}"
            )
        if input_data.shape[0] != self.n_beams:
            raise ValidationError(
                f"batch carries {input_data.shape[0]} beams; kernel is "
                f"configured for {self.n_beams}"
            )
        n_dms = delay_table.shape[0]
        if out is None:
            out = np.zeros(
                (self.n_beams, n_dms, self.kernel.samples), dtype=np.float32
            )
        else:
            check_out(out, (self.n_beams, n_dms, self.kernel.samples))
        for beam in range(self.n_beams):
            self.kernel._execute(
                input_data[beam], delay_table, out=out[beam], backend=backend
            )
        return out


def execute_sharded(
    config,
    input_data: np.ndarray,
    delay_table: np.ndarray,
    shards,
    out: np.ndarray | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Deprecated: route sharded launches through :mod:`repro.run`.

    Same contract as before — one uniform time batch executed shard by
    shard and stitched bit-identically — but the blessed spelling is now
    ``repro.run.execute(ExecutionRequest(data=..., config=...,
    delay_table=..., shards=...))``.  Warns once per process.
    """
    from repro.utils.deprecation import warn_legacy_execute

    warn_legacy_execute(
        "execute_sharded",
        "repro.run.execute(ExecutionRequest(data=input_data, "
        "config=config, delay_table=delay_table, shards=shards))",
    )
    return _execute_sharded(
        config, input_data, delay_table, shards, out=out, backend=backend
    )


def _execute_sharded(
    config,
    input_data: np.ndarray,
    delay_table: np.ndarray,
    shards,
    out: np.ndarray | None = None,
    backend: str | None = None,
) -> np.ndarray:
    """Execute one time batch shard by shard and stitch the output.

    The :mod:`repro.sched` decomposition claim made concrete:
    dedispersion is independent per (beam, DM trial), so running each
    shard's DM sub-range as its own launch and writing its rows into
    place reproduces :meth:`BatchedDedispersionKernel.execute` bit for
    bit (asserted by ``tests/sched/test_shard.py``).  ``shards`` must
    all belong to one time batch and jointly cover every (beam, DM row)
    of the ``(beams, channels, t)`` input exactly once; ``config`` must
    tile every shard's DM count.  ``backend`` selects the executor for
    every shard launch (both executors stitch bit-identically); ``out``,
    when given, must be a float32 ``(beams, n_dms, samples)`` buffer.

    This is the internal, warning-free entrypoint the :mod:`repro.run`
    facade dispatches to.
    """
    from repro.opencl_sim.codegen import build_kernel

    input_data = np.asarray(input_data)
    if input_data.ndim != 3:
        raise ValidationError(
            "sharded input must have shape (beams, channels, t), got "
            f"{input_data.shape}"
        )
    delay_table = check_delay_table(delay_table, input_data.shape[1])
    shards = tuple(shards)
    if not shards:
        raise ValidationError("execute_sharded needs at least one shard")
    n_beams = input_data.shape[0]
    n_dms = delay_table.shape[0]
    samples = shards[0].samples
    covered = np.zeros((n_beams, n_dms), dtype=bool)
    for shard in shards:
        if shard.batch != shards[0].batch or shard.samples != samples:
            raise ValidationError(
                "execute_sharded covers a single uniform time batch; "
                f"shard {shard.shard_id} does not match"
            )
        if shard.beam < 0 or shard.dm_start < 0:
            # Negative indices would slice from the end of the arrays and
            # double-cover rows without tripping the coverage check.
            raise ValidationError(
                f"shard {shard.shard_id} has a negative beam or dm_start"
            )
        if shard.beam >= n_beams or shard.dm_start + shard.dm_count > n_dms:
            raise ValidationError(
                f"shard {shard.shard_id} exceeds the (beams, DMs) extent"
            )
        rows = covered[shard.beam, shard.dm_start:shard.dm_start + shard.dm_count]
        if rows.any():
            raise ValidationError(f"shard {shard.shard_id} overlaps another")
        rows[:] = True
    if not covered.all():
        raise ValidationError("shards do not cover every (beam, DM row)")

    kernel = build_kernel(config, input_data.shape[1], samples)
    if out is None:
        out = np.zeros((n_beams, n_dms, samples), dtype=np.float32)
    else:
        check_out(out, (n_beams, n_dms, samples))
        out[...] = 0.0
    for shard in shards:
        stop = shard.dm_start + shard.dm_count
        kernel._execute(
            input_data[shard.beam],
            delay_table[shard.dm_start:stop],
            out=out[shard.beam, shard.dm_start:stop],
            backend=backend,
        )
    return out


def build_batched_kernel(
    config,
    channels: int,
    samples: int,
    n_beams: int,
) -> BatchedDedispersionKernel:
    """Generate a kernel and wrap it for ``n_beams``-wide launches."""
    from repro.opencl_sim.codegen import build_kernel

    return BatchedDedispersionKernel(
        kernel=build_kernel(config, channels, samples),
        n_beams=n_beams,
    )
