"""Multi-beam batched kernel execution.

Sec. III-A: "without losing generality, in this paper we describe the case
in which there is a single input beam, but all results can be applied to
the case of multiple beams."  This module makes that concrete: a beams
axis is added as the third NDRange dimension (the OpenCL ``get_group_id(2)``
a production kernel would use), all beams share one delay table and one
configuration, and the functional executor processes the batch in one
launch.

The model-level counterpart is
:func:`repro.hardware.multibeam_metrics.simulate_multibeam` — per-beam
traffic scales linearly while the launch overhead and the delay table are
amortised across the batch, which is why batching beams helps most at
small per-beam workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.opencl_sim.kernel import DedispersionKernel
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class BatchedDedispersionKernel:
    """A dedispersion kernel applied to a batch of beams per launch."""

    kernel: DedispersionKernel
    n_beams: int

    def __post_init__(self) -> None:
        require_positive_int(self.n_beams, "n_beams")

    @property
    def global_size(self) -> tuple[int, int, int]:
        """The 3-D NDRange: (samples, DMs, beams)."""
        return (self.kernel.samples, 0, self.n_beams)  # DMs set per launch

    def execute(
        self,
        input_data: np.ndarray,
        delay_table: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dedisperse every beam of a ``(beams, channels, t)`` batch.

        Returns ``(beams, n_dms, samples)``.  All beams share the delay
        table — they observe through the same setup — exactly as the
        paper's multi-beam argument assumes.
        """
        input_data = np.asarray(input_data)
        if input_data.ndim != 3:
            raise ValidationError(
                "batched input must have shape (beams, channels, t), got "
                f"{input_data.shape}"
            )
        if input_data.shape[0] != self.n_beams:
            raise ValidationError(
                f"batch carries {input_data.shape[0]} beams; kernel is "
                f"configured for {self.n_beams}"
            )
        n_dms = delay_table.shape[0]
        if out is None:
            out = np.zeros(
                (self.n_beams, n_dms, self.kernel.samples), dtype=np.float32
            )
        elif out.shape != (self.n_beams, n_dms, self.kernel.samples):
            raise ValidationError(
                f"out must have shape {(self.n_beams, n_dms, self.kernel.samples)},"
                f" got {out.shape}"
            )
        for beam in range(self.n_beams):
            self.kernel.execute(
                input_data[beam], delay_table, out=out[beam]
            )
        return out


def build_batched_kernel(
    config,
    channels: int,
    samples: int,
    n_beams: int,
) -> BatchedDedispersionKernel:
    """Generate a kernel and wrap it for ``n_beams``-wide launches."""
    from repro.opencl_sim.codegen import build_kernel

    return BatchedDedispersionKernel(
        kernel=build_kernel(config, channels, samples),
        n_beams=n_beams,
    )
