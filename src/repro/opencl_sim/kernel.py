"""Functional execution of a configured dedispersion kernel.

:class:`DedispersionKernel` carries two interchangeable executors behind
one ``execute`` call:

* the **tiled** path replays the *same tiled decomposition* the
  generated OpenCL source describes — work-group by work-group, staging
  each channel's shared window, then accumulating each DM row at its own
  shift — using NumPy row operations in place of the per-work-item
  lanes.  Because the decomposition, shifts and accumulation order
  mirror the generated source, a configuration-space bug (wrong offsets
  at tile boundaries, bad staging window, off-by-one shifts) makes the
  output diverge from the sequential reference, which is exactly what
  the property-based tests check across the whole tuning space;
* the **vectorized** path (:mod:`repro.opencl_sim.vectorized`) computes
  every work-group of the launch per channel with whole-array gathers —
  bit-identical output, an order of magnitude faster at realistic
  scales.

Backend choice (``backend="tiled"|"vectorized"|"auto"``, plus the
process-wide :envvar:`REPRO_KERNEL_BACKEND` pin) is resolved per launch
by :func:`repro.opencl_sim.backend.resolve_backend`; every launch lands
in the metrics registry as ``repro_kernel_launches_total{backend=...}``
plus a ``repro_kernel_execute_seconds`` wall-time observation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import KernelConfiguration
from repro.errors import ValidationError
from repro.obs import get_registry
from repro.opencl_sim.backend import resolve_backend
from repro.opencl_sim.channel_tile import accumulate_channel_tiles
from repro.opencl_sim.ndrange import NDRange
from repro.opencl_sim.vectorized import accumulate_channels


@dataclass(frozen=True)
class DedispersionKernel:
    """An executable, configured dedispersion kernel.

    Built by :func:`repro.opencl_sim.codegen.build_kernel`; carries the
    generated OpenCL source for inspection alongside the executor.
    ``backend`` is the default executor for :meth:`execute` (overridable
    per launch).
    """

    config: KernelConfiguration
    channels: int
    samples: int
    source: str
    use_local_staging: bool = True
    backend: str = "auto"

    def ndrange(self, n_dms: int) -> NDRange:
        """The launch geometry for ``n_dms`` trial DMs."""
        return NDRange(
            global_time=self.samples,
            global_dm=n_dms,
            tile_samples=self.config.tile_samples,
            tile_dms=self.config.tile_dms,
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        input_data: np.ndarray,
        delay_table: np.ndarray,
        out: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Deprecated: route launches through the :mod:`repro.run` facade.

        Same contract as before — dedisperse ``input_data`` for every DM
        row of ``delay_table``, returning ``(n_dms, samples)`` — but the
        blessed spelling is now
        ``repro.run.execute(ExecutionRequest(data=..., kernel=self,
        delay_table=...))``.  Warns once per process.
        """
        from repro.utils.deprecation import warn_legacy_execute

        warn_legacy_execute(
            "DedispersionKernel.execute",
            "repro.run.execute(ExecutionRequest(data=input_data, "
            "kernel=kernel, delay_table=delay_table))",
        )
        return self._execute(
            input_data, delay_table, out=out, backend=backend
        )

    def _execute(
        self,
        input_data: np.ndarray,
        delay_table: np.ndarray,
        out: np.ndarray | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Dedisperse ``input_data`` for every DM row of ``delay_table``.

        ``input_data`` has shape ``(channels, t)`` with
        ``t >= samples + max(delay_table)`` so every shifted read is valid;
        ``delay_table`` has shape ``(n_dms, channels)`` (non-negative
        integer shifts).  Returns the ``(n_dms, samples)`` output matrix.

        ``out``, when given, must be a float32 array of the output shape
        (the executors accumulate in float32; any other dtype would
        silently change the arithmetic).  ``backend`` overrides the
        kernel's default executor for this launch.

        This is the internal, warning-free entrypoint the
        :mod:`repro.run` facade dispatches to.
        """
        input_data = np.asarray(input_data)
        delay_table = np.asarray(delay_table)
        if input_data.ndim != 2 or input_data.shape[0] != self.channels:
            raise ValidationError(
                f"input must have shape (channels={self.channels}, t), "
                f"got {input_data.shape}"
            )
        if delay_table.ndim != 2 or delay_table.shape[1] != self.channels:
            raise ValidationError(
                f"delay table must have shape (n_dms, {self.channels}), "
                f"got {delay_table.shape}"
            )
        if np.any(delay_table < 0):
            raise ValidationError("delay table must be non-negative")
        n_dms = delay_table.shape[0]
        needed = self.samples + int(delay_table.max(initial=0))
        if input_data.shape[1] < needed:
            raise ValidationError(
                f"input has {input_data.shape[1]} samples; needs {needed} "
                f"(samples + max delay)"
            )
        if out is None:
            out = np.zeros((n_dms, self.samples), dtype=np.float32)
        else:
            check_out(out, (n_dms, self.samples))
            out[...] = 0.0

        ndr = self.ndrange(n_dms)
        reuse_span = (
            int(
                (delay_table.max(axis=0) - delay_table.min(axis=0)).max(
                    initial=0
                )
            )
            if n_dms
            else 0
        )
        choice = resolve_backend(
            self.backend if backend is None else backend,
            ndr.n_work_groups,
            reuse_span=reuse_span,
            samples=self.samples,
        )
        start = time.perf_counter()
        if choice == "vectorized":
            accumulate_channels(input_data, delay_table, out)
        elif choice == "channel_tile":
            accumulate_channel_tiles(input_data, delay_table, out)
        else:
            tile_t = self.config.tile_samples
            for wg in ndr.work_groups():
                self._execute_work_group(
                    input_data, delay_table, out,
                    wg.time_offset, wg.dm_offset, tile_t,
                )
        elapsed = time.perf_counter() - start
        registry = get_registry()
        registry.counter("repro_kernel_launches_total", backend=choice).inc()
        registry.histogram(
            "repro_kernel_execute_seconds", backend=choice
        ).observe(elapsed)
        return out

    # ------------------------------------------------------------------
    def _execute_work_group(
        self,
        input_data: np.ndarray,
        delay_table: np.ndarray,
        out: np.ndarray,
        t0: int,
        d0: int,
        tile_t: int,
    ) -> None:
        """One work-group: stage each channel window, accumulate each row."""
        tile_d = self.config.tile_dms
        accum = np.zeros((tile_d, tile_t), dtype=np.float32)
        for channel in range(self.channels):
            shifts = delay_table[d0 : d0 + tile_d, channel]
            if self.use_local_staging and tile_d > 1:
                # Collaborative load of the union window, then per-row reads
                # at local offsets — the __local staging path.
                first = int(shifts.min())
                window = tile_t + int(shifts.max()) - first
                staged = input_data[channel, t0 + first : t0 + first + window]
                for row in range(tile_d):
                    local = int(shifts[row]) - first
                    accum[row] += staged[local : local + tile_t]
            else:
                for row in range(tile_d):
                    start = t0 + int(shifts[row])
                    accum[row] += input_data[channel, start : start + tile_t]
        out[d0 : d0 + tile_d, t0 : t0 + tile_t] = accum


def check_out(out: np.ndarray, shape: tuple[int, ...]) -> None:
    """Validate a caller-supplied output buffer: shape and float32 dtype.

    Both executors accumulate in float32; writing through a float64 (or
    any other) ``out`` would silently change the arithmetic and break
    the bit-for-bit stitching guarantee of
    :func:`repro.opencl_sim.batch.execute_sharded`.
    """
    if not isinstance(out, np.ndarray) or out.shape != shape:
        raise ValidationError(
            f"out must be an ndarray of shape {shape}, got "
            f"{out.shape if isinstance(out, np.ndarray) else type(out).__name__}"
        )
    if out.dtype != np.float32:
        raise ValidationError(
            f"out must be float32 (the executors accumulate in float32), "
            f"got {out.dtype}"
        )
