"""The reuse-tiled executor: channel blocks sized off the Eq. 3 span.

The paper's Eq. 3 bounds the achievable data reuse of a tile: a block of
work computing ``n_dms`` trials over ``samples`` outputs needs
``samples + span`` input samples of a channel, where ``span`` is that
channel's delay spread across the DM range
(:func:`repro.astro.dispersion.reuse_span_samples`).  When the span is
small relative to the batch — Apertif's sub-sample per-trial deltas —
almost every loaded sample is reused by every trial, and the winning
strategy is to *stage a compact per-channel working set* and accumulate
every trial out of it before moving on (Barsdell et al. 2012; Sclocco
et al. 2016).

This executor makes that concrete: channels are processed in blocks
whose staged working set — ``block_channels * (samples + block_span)``
float32 samples — fits a fixed byte budget (a last-level-cache-slice
stand-in).  Each block's input is copied once into a compact
contiguous buffer (the staging step) and all trial rows are gathered
from it; the block loop then moves to the next channel range.

Bit-for-bit equality with the tiled and vectorized executors is exact,
not approximate: blocks partition the channel axis *in index order*, and
within a block channels are accumulated in index order, so every output
element sees the same float32 additions in the same order as the other
two executors.  The property tests assert exact equality across the
sampled tuning space.
"""

from __future__ import annotations

import numpy as np

#: Staged working-set budget per channel block (bytes).  Sized like one
#: last-level-cache slice: big enough to amortise the per-block staging
#: copy, small enough that the working set of a block genuinely fits
#: near the cores on the devices the paper targets.
DEFAULT_BLOCK_BUDGET_BYTES = 2 * 1024 * 1024

#: Dtype used for fancy-index gathers (fits any valid delay).
_INDEX_DTYPE = np.intp


def channel_spans(delay_table: np.ndarray) -> np.ndarray:
    """Per-channel delay span across the table's DM rows, shape ``(c,)``.

    ``span[c] = delay_table[:, c].max() - delay_table[:, c].min()`` — the
    discrete form of Eq. 3's reuse span for the table's own DM interval
    (delay tables are monotonic in DM, so max/min land on the end rows).
    """
    if delay_table.shape[0] == 0:
        return np.zeros(delay_table.shape[1], dtype=np.int64)
    return (
        delay_table.max(axis=0) - delay_table.min(axis=0)
    ).astype(np.int64)


def channel_blocks(
    delay_table: np.ndarray,
    samples: int,
    budget_bytes: int = DEFAULT_BLOCK_BUDGET_BYTES,
) -> list[tuple[int, int]]:
    """Partition the channel axis into reuse blocks, in index order.

    Greedy: channels join the current block while the block's staged
    working set — ``n_channels * (samples + span) * 4`` bytes, ``span``
    the max delay spread inside the block — stays within
    ``budget_bytes``.  A single channel always forms a valid block, so
    the partition exists for any table.
    """
    spans = channel_spans(delay_table)
    n_channels = delay_table.shape[1]
    blocks: list[tuple[int, int]] = []
    start = 0
    block_span = 0
    for channel in range(n_channels):
        span = int(spans[channel])
        width = samples + max(block_span, span)
        if (
            channel > start
            and (channel - start + 1) * width * 4 > budget_bytes
        ):
            blocks.append((start, channel))
            start = channel
            block_span = span
        else:
            block_span = max(block_span, span)
    blocks.append((start, n_channels))
    return blocks


def accumulate_channel_tiles(
    input_data: np.ndarray,
    delay_table: np.ndarray,
    out: np.ndarray,
    budget_bytes: int = DEFAULT_BLOCK_BUDGET_BYTES,
) -> np.ndarray:
    """Accumulate every channel block's staged rows into ``out``, in order.

    Same contract as
    :func:`repro.opencl_sim.vectorized.accumulate_channels` —
    ``input_data`` is ``(channels, t)``, ``delay_table`` is
    ``(n_dms, channels)``, ``out`` the zero-initialised
    ``(n_dms, samples)`` output, inputs validated by the caller — but
    the input is walked one compact channel block at a time instead of
    through one whole-stream view.
    """
    samples = out.shape[1]
    shifts = delay_table.astype(_INDEX_DTYPE, copy=False)
    for c0, c1 in channel_blocks(delay_table, samples, budget_bytes):
        block_shifts = shifts[:, c0:c1]
        lo = int(block_shifts.min(initial=0))
        hi = int(block_shifts.max(initial=0)) + samples
        # The staging step: one contiguous copy of the block's union
        # window — the working set Eq. 3 says a reuse-tiled kernel keeps
        # on chip.
        staged = np.ascontiguousarray(input_data[c0:c1, lo:hi])
        windows = np.lib.stride_tricks.sliding_window_view(
            staged, samples, axis=1
        )
        for channel in range(c1 - c0):
            # Channel-index order within and across blocks matches the
            # other executors' accumulation order — the bit-equality
            # contract.
            out += windows[channel][block_shifts[:, channel] - lo]
    return out
