"""Run-time kernel source generation.

"The source code implementing a specific instance of the algorithm is
generated at run-time, after the configuration of these four parameters"
(Sec. III-B).  We reproduce that pipeline: :func:`generate_kernel_source`
renders the OpenCL C a configuration would compile — with the work-group
geometry baked in as compile-time constants, the accumulators declared as
registers, and the per-channel local-memory staging loop — and
:func:`build_kernel` pairs that source with the functionally equivalent
NumPy executor of :class:`repro.opencl_sim.kernel.DedispersionKernel`.

The generated source is *load-bearing for tests*, not decoration: its
structure (one accumulator declaration per ``et x ed`` element, staging
only when the DM tile is shared, barriers guarding the staging buffer)
is asserted against the configuration, so a regression in the generator
logic is caught even though no OpenCL compiler runs here.
"""

from __future__ import annotations

from repro.core.config import KernelConfiguration
from repro.utils.validation import require_positive_int


def _accumulator_block(config: KernelConfiguration) -> str:
    """Register accumulator declarations, one per computed element."""
    lines = []
    for d in range(config.elements_dm):
        names = ", ".join(
            f"acc_{d}_{t} = 0.0f" for t in range(config.elements_time)
        )
        lines.append(f"  float {names};")
    return "\n".join(lines)


def _store_block(config: KernelConfiguration) -> str:
    """Coalesced output stores, one row of samples per DM element."""
    lines = []
    for d in range(config.elements_dm):
        lines.append(f"  // DM element {d}")
        for t in range(config.elements_time):
            lines.append(
                f"  output[(dm_base + {d} * WD) * NR_SAMPLES"
                f" + sample_base + {t} * WT] = acc_{d}_{t};"
            )
    return "\n".join(lines)


def generate_kernel_source(
    config: KernelConfiguration,
    channels: int,
    samples: int,
    use_local_staging: bool = True,
) -> str:
    """Render the OpenCL C source for one kernel configuration.

    ``use_local_staging`` selects the collaborative local-memory path used
    when the DM tile is shared (``tile_dms > 1``); a one-DM tile reads
    straight from global memory, "the one-dimensional configuration is just
    a special case of the two-dimensional one" (Sec. III-B).
    """
    require_positive_int(channels, "channels")
    require_positive_int(samples, "samples")
    staging = use_local_staging and config.tile_dms > 1

    header = f"""\
// Auto-generated dedispersion kernel
// configuration: wt={config.work_items_time} wd={config.work_items_dm} \
et={config.elements_time} ed={config.elements_dm}
#define WT {config.work_items_time}
#define WD {config.work_items_dm}
#define ET {config.elements_time}
#define ED {config.elements_dm}
#define NR_CHANNELS {channels}
#define NR_SAMPLES {samples}
#define TILE_SAMPLES (WT * ET)
#define TILE_DMS (WD * ED)
"""
    signature = """\
__kernel void dedisperse(__global const float * restrict input,
                         __global float * restrict output,
                         __global const int * restrict delay_table,
                         const int input_stride)
{
  const int sample_base = get_group_id(0) * TILE_SAMPLES + get_local_id(0);
  const int dm_base = get_group_id(1) * TILE_DMS + get_local_id(1);
"""
    accumulators = _accumulator_block(config)
    if staging:
        body = """\
  __local float staging[STAGING_SIZE];
  for (int channel = 0; channel < NR_CHANNELS; channel++) {
    const int delay_first = delay_table[(get_group_id(1) * TILE_DMS) * NR_CHANNELS + channel];
    const int delay_last  = delay_table[(get_group_id(1) * TILE_DMS + TILE_DMS - 1) * NR_CHANNELS + channel];
    const int window = TILE_SAMPLES + (delay_last - delay_first);
    // collaborative load: all work-items stream the shared window
    for (int i = get_local_id(1) * WT + get_local_id(0); i < window; i += WT * WD) {
      staging[i] = input[channel * input_stride + get_group_id(0) * TILE_SAMPLES + delay_first + i];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    #pragma unroll
    for (int d = 0; d < ED; d++) {
      const int shift = delay_table[(dm_base + d * WD) * NR_CHANNELS + channel] - delay_first;
      #pragma unroll
      for (int t = 0; t < ET; t++) {
        ACCUMULATE(d, t, staging[shift + get_local_id(0) + t * WT]);
      }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
"""
    else:
        body = """\
  for (int channel = 0; channel < NR_CHANNELS; channel++) {
    #pragma unroll
    for (int d = 0; d < ED; d++) {
      const int shift = delay_table[(dm_base + d * WD) * NR_CHANNELS + channel];
      #pragma unroll
      for (int t = 0; t < ET; t++) {
        ACCUMULATE(d, t, input[channel * input_stride + sample_base + t * WT + shift]);
      }
    }
  }
"""
    stores = _store_block(config)
    return (
        header
        + ("#define STAGING_SIZE (TILE_SAMPLES + MAX_TILE_SPAN)\n" if staging else "")
        + "#define ACCUMULATE(d, t, v) acc_##d##_##t += (v)\n"
        + signature
        + accumulators
        + "\n"
        + body
        + stores
        + "\n}\n"
    )


def build_kernel(
    config: KernelConfiguration,
    channels: int,
    samples: int,
    use_local_staging: bool = True,
    backend: str = "auto",
):
    """Generate source and return the executable kernel object.

    ``backend`` sets the kernel's default executor — ``"tiled"``,
    ``"vectorized"`` or ``"auto"`` (see :mod:`repro.opencl_sim.backend`).
    """
    from repro.opencl_sim.backend import normalize_backend
    from repro.opencl_sim.kernel import DedispersionKernel

    source = generate_kernel_source(config, channels, samples, use_local_staging)
    return DedispersionKernel(
        config=config,
        channels=channels,
        samples=samples,
        source=source,
        use_local_staging=use_local_staging,
        backend=normalize_backend(backend),
    )
