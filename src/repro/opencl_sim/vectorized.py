"""The vectorized fast-path executor: whole-launch gathers per channel.

Dedispersion is a pure gather-accumulate (Barsdell et al. 2012; Sclocco
et al. 2016): every output element reads one sample per channel at a
per-(DM, channel) shift and sums them.  The tiled executor replays that
as Python loops over work-groups x channels x tile rows; this module
computes *all* work-groups of a launch at once, one whole-array NumPy
operation per channel:

* a zero-copy sliding-window view exposes every possible shifted read
  of a channel as rows of a ``(t - samples + 1, samples)`` matrix;
* one fancy-index gather pulls the ``n_dms`` rows the delay table
  selects for that channel;
* one batched ``+=`` accumulates them into the output.

Bit-for-bit equality with the tiled executor is not approximate: both
paths start each output element at float32 zero and add the channels in
index order with float32 arithmetic, so every intermediate rounding
step is identical.  The property tests assert exact equality across the
sampled tuning space.

The Python trip count drops from ``work_groups x channels x tile_dms``
(tiled) to ``channels`` (here), which is where the order-of-magnitude
speedup measured by ``benchmarks/bench_kernel_backends.py`` comes from.
"""

from __future__ import annotations

import numpy as np

#: Dtype used for fancy-index gathers (fits any valid delay).
_INDEX_DTYPE = np.intp


def accumulate_channels(
    input_data: np.ndarray,
    delay_table: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Accumulate every channel's shifted rows into ``out``, in order.

    ``input_data`` is ``(channels, t)``, ``delay_table`` is
    ``(n_dms, channels)`` with every shift at most ``t - samples``, and
    ``out`` is the zero-initialised ``(n_dms, samples)`` output.  Inputs
    are assumed validated by the caller
    (:meth:`repro.opencl_sim.kernel.DedispersionKernel.execute`).
    """
    samples = out.shape[1]
    shifts = delay_table.astype(_INDEX_DTYPE, copy=False)
    # (channels, t - samples + 1, samples) zero-copy view: row w of
    # channel c is input_data[c, w : w + samples].
    windows = np.lib.stride_tricks.sliding_window_view(
        input_data, samples, axis=1
    )
    for channel in range(input_data.shape[0]):
        # One gather + one batched row accumulation per channel.  The
        # channel-index order matches the tiled executor's innermost
        # accumulation order, which is what makes the result bit-equal.
        out += windows[channel][shifts[:, channel]]
    return out
