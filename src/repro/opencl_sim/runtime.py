"""Mini OpenCL-like runtime objects: platform, device, context, queue.

These mirror the OpenCL host API shape closely enough that the examples
read like real OpenCL host code, while executing everything in NumPy.
Buffers track residency so tests can assert that the pipeline keeps data
on-device between kernels (the paper's "input is already available in the
accelerator memory, and the output is kept on device", Sec. IV).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.hardware.device import DeviceSpec
from repro.obs import get_registry


@dataclass(frozen=True)
class SimDevice:
    """A simulated OpenCL device wrapping a :class:`DeviceSpec`."""

    spec: DeviceSpec

    @property
    def name(self) -> str:
        """Device name, as ``clGetDeviceInfo(CL_DEVICE_NAME)`` would report."""
        return self.spec.name

    @property
    def max_work_group_size(self) -> int:
        """``CL_DEVICE_MAX_WORK_GROUP_SIZE``."""
        return self.spec.max_work_group_size


@dataclass(frozen=True)
class SimPlatform:
    """A simulated OpenCL platform (one per vendor)."""

    name: str
    devices: tuple[SimDevice, ...]

    @classmethod
    def discover(cls) -> tuple["SimPlatform", ...]:
        """Enumerate platforms for every catalogued device, by vendor."""
        from repro.hardware.catalog import all_devices

        by_vendor: dict[str, list[SimDevice]] = {}
        for spec in all_devices():
            by_vendor.setdefault(spec.vendor, []).append(SimDevice(spec))
        return tuple(
            cls(name=vendor, devices=tuple(devs))
            for vendor, devs in sorted(by_vendor.items())
        )


class Buffer:
    """A device-resident array with host transfer accounting."""

    _ids = itertools.count(1)

    def __init__(self, context: "Context", shape: tuple[int, ...], dtype=np.float32):
        self.context = context
        self.array = np.zeros(shape, dtype=dtype)
        self.id = next(self._ids)
        self.host_transfers = 0

    @property
    def nbytes(self) -> int:
        """Allocation size in bytes."""
        return self.array.nbytes

    def write(self, host_array: np.ndarray) -> None:
        """Host -> device transfer (``clEnqueueWriteBuffer``)."""
        if host_array.shape != self.array.shape:
            raise ValidationError(
                f"host array shape {host_array.shape} != buffer {self.array.shape}"
            )
        self.array[...] = host_array
        self.host_transfers += 1

    def read(self) -> np.ndarray:
        """Device -> host transfer (``clEnqueueReadBuffer``); returns a copy."""
        self.host_transfers += 1
        return self.array.copy()


@dataclass(frozen=True)
class Event:
    """Profiling event: wall-clock plus model-predicted execution time."""

    label: str
    wall_seconds: float
    simulated_seconds: float | None = None


class Context:
    """Owns buffers for one device (``clCreateContext``)."""

    def __init__(self, device: SimDevice):
        self.device = device
        self.buffers: list[Buffer] = []

    def alloc(self, shape: tuple[int, ...], dtype=np.float32) -> Buffer:
        """Allocate a device buffer."""
        buf = Buffer(self, shape, dtype)
        self.buffers.append(buf)
        return buf

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently allocated on the device."""
        return sum(b.nbytes for b in self.buffers)


class CommandQueue:
    """Executes kernels in order and records profiling events."""

    def __init__(self, context: Context):
        self.context = context
        self.events: list[Event] = []

    def enqueue(
        self,
        label: str,
        fn: Callable[[], None],
        simulated_seconds: float | None = None,
    ) -> Event:
        """Run ``fn`` now, recording an :class:`Event`.

        Every launch also lands in the process-wide metrics registry:
        ``repro_sim_kernel_launches_total{device,kernel}`` counts them
        and ``repro_sim_modelled_seconds`` records the model-predicted
        execution time (profiled launches only).
        """
        start = time.perf_counter()
        fn()
        event = Event(
            label=label,
            wall_seconds=time.perf_counter() - start,
            simulated_seconds=simulated_seconds,
        )
        self.events.append(event)
        registry = get_registry()
        device = self.context.device.name
        registry.counter(
            "repro_sim_kernel_launches_total", device=device, kernel=label
        ).inc()
        if simulated_seconds is not None:
            registry.histogram(
                "repro_sim_modelled_seconds", device=device, kernel=label
            ).observe(simulated_seconds)
        return event

    def finish(self) -> None:
        """``clFinish`` — execution is synchronous, so this is a no-op."""

    @property
    def total_simulated_seconds(self) -> float:
        """Sum of model-predicted times over all profiled kernels."""
        return sum(e.simulated_seconds or 0.0 for e in self.events)
