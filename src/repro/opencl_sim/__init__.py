"""A miniature OpenCL-like runtime executing kernels functionally.

The paper generates its kernel source at run time from the four tuning
parameters and executes it through OpenCL.  This subpackage mirrors that
pipeline without a GPU: :mod:`~repro.opencl_sim.codegen` renders the
OpenCL C source a configuration would produce (useful for inspection and
for tests over the generated structure), and builds an equivalent NumPy
executor that performs the *same tiled decomposition* a work-group grid
would — so the correctness of every point of the tuning space is testable
against the sequential reference.

Three executors implement each kernel (see
:mod:`~repro.opencl_sim.backend`): the tiled reference, the
bit-identical vectorized fast path of
:mod:`~repro.opencl_sim.vectorized`, and the reuse-tiled channel-block
path of :mod:`~repro.opencl_sim.channel_tile`, selected per launch via
``backend="tiled"|"vectorized"|"channel_tile"|"auto"`` or
``$REPRO_KERNEL_BACKEND``.
"""

from repro.opencl_sim.backend import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    normalize_backend,
    resolve_backend,
)
from repro.opencl_sim.ndrange import NDRange, WorkGroup
from repro.opencl_sim.runtime import (
    Buffer,
    CommandQueue,
    Context,
    Event,
    SimDevice,
    SimPlatform,
)
from repro.opencl_sim.codegen import generate_kernel_source, build_kernel
from repro.opencl_sim.kernel import DedispersionKernel
from repro.opencl_sim.batch import (
    BatchedDedispersionKernel,
    build_batched_kernel,
    execute_sharded,
)
from repro.opencl_sim.vectorized import accumulate_channels
from repro.opencl_sim.channel_tile import (
    accumulate_channel_tiles,
    channel_blocks,
    channel_spans,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "KERNEL_BACKENDS",
    "normalize_backend",
    "resolve_backend",
    "accumulate_channels",
    "accumulate_channel_tiles",
    "channel_blocks",
    "channel_spans",
    "execute_sharded",
    "NDRange",
    "WorkGroup",
    "Buffer",
    "CommandQueue",
    "Context",
    "Event",
    "SimDevice",
    "SimPlatform",
    "generate_kernel_source",
    "build_kernel",
    "DedispersionKernel",
    "BatchedDedispersionKernel",
    "build_batched_kernel",
]
