"""NDRange and work-group decomposition.

OpenCL launches a kernel over a global index space (the NDRange) divided
into work-groups.  For dedispersion the space is two-dimensional: dimension
0 indexes time samples, dimension 1 indexes trial DMs (Sec. III-B's
"two-dimensional work-groups").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ValidationError
from repro.utils.validation import require_positive_int


@dataclass(frozen=True)
class WorkGroup:
    """One work-group: its group indices and the tile it covers."""

    group_time: int
    group_dm: int
    time_offset: int
    dm_offset: int
    tile_samples: int
    tile_dms: int


@dataclass(frozen=True)
class NDRange:
    """A 2-D global index space with a fixed work-group (tile) shape.

    ``global_time`` / ``global_dm`` are expressed in *output elements*
    (samples and DMs); ``tile_samples`` / ``tile_dms`` in elements per
    work-group.  Both dimensions must tile exactly — the code generator
    emits kernels without remainder handling, mirroring the paper.
    """

    global_time: int
    global_dm: int
    tile_samples: int
    tile_dms: int

    def __post_init__(self) -> None:
        require_positive_int(self.global_time, "global_time")
        require_positive_int(self.global_dm, "global_dm")
        require_positive_int(self.tile_samples, "tile_samples")
        require_positive_int(self.tile_dms, "tile_dms")
        if self.global_time % self.tile_samples:
            raise ValidationError(
                f"global time size {self.global_time} not divisible by "
                f"tile_samples {self.tile_samples}"
            )
        if self.global_dm % self.tile_dms:
            raise ValidationError(
                f"global DM size {self.global_dm} not divisible by "
                f"tile_dms {self.tile_dms}"
            )

    @property
    def groups_time(self) -> int:
        """Work-groups along the time dimension."""
        return self.global_time // self.tile_samples

    @property
    def groups_dm(self) -> int:
        """Work-groups along the DM dimension."""
        return self.global_dm // self.tile_dms

    @property
    def n_work_groups(self) -> int:
        """Total work-groups in the launch."""
        return self.groups_time * self.groups_dm

    def work_groups(self) -> Iterator[WorkGroup]:
        """Iterate work-groups in dispatch order (DM-major, like the paper:
        work-groups sharing a DM tile are adjacent so their loads coalesce).
        """
        for gd in range(self.groups_dm):
            for gt in range(self.groups_time):
                yield WorkGroup(
                    group_time=gt,
                    group_dm=gd,
                    time_offset=gt * self.tile_samples,
                    dm_offset=gd * self.tile_dms,
                    tile_samples=self.tile_samples,
                    tile_dms=self.tile_dms,
                )
