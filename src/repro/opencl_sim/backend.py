"""Kernel executor backend selection.

Three functionally identical executors implement a configured kernel:

* ``"tiled"`` — :class:`~repro.opencl_sim.kernel.DedispersionKernel`'s
  work-group replay of the generated OpenCL source, the reference the
  property tests trust;
* ``"vectorized"`` — :mod:`~repro.opencl_sim.vectorized`'s whole-array
  fast path, bit-identical to the tiled executor (float32, exact
  equality) because both accumulate channels in the same order;
* ``"channel_tile"`` — :mod:`~repro.opencl_sim.channel_tile`'s
  reuse-tiled path: channels are staged in compact blocks sized off the
  paper's Eq. 3 reuse span, bit-identical for the same reason.

``"auto"`` (the default everywhere) resolves the choice at launch time:
the :envvar:`REPRO_KERNEL_BACKEND` environment variable pins a backend
process-wide; otherwise the heuristic keeps the tiled reference for
single-work-group launches (where its Python overhead is negligible),
picks the reuse-tiled path when the launch's delay span says the
working set is compact (``2 * reuse_span <= samples`` — the
high-frequency, heavy-reuse Apertif regime), and the vectorized path
for everything else.  An explicit ``backend=`` argument always wins
over the environment.
"""

from __future__ import annotations

import os

from repro.errors import ValidationError

#: The accepted values of every ``backend=`` parameter.
KERNEL_BACKENDS = ("tiled", "vectorized", "channel_tile", "auto")

#: Environment variable pinning the backend for a whole process.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


def normalize_backend(backend: str | None) -> str:
    """Validate a ``backend=`` value; ``None`` means ``"auto"``."""
    if backend is None:
        return "auto"
    if backend not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {backend!r}; expected one of "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    return backend


def backend_from_env() -> str | None:
    """The :envvar:`REPRO_KERNEL_BACKEND` override, validated, or None."""
    value = os.environ.get(BACKEND_ENV_VAR)
    if value is None or value == "":
        return None
    if value not in KERNEL_BACKENDS:
        raise ValidationError(
            f"${BACKEND_ENV_VAR}={value!r} is not a kernel backend; "
            f"expected one of {', '.join(KERNEL_BACKENDS)}"
        )
    return None if value == "auto" else value


def resolve_backend(
    backend: str | None,
    n_work_groups: int,
    reuse_span: int | None = None,
    samples: int | None = None,
) -> str:
    """The executor to run one launch with.

    Resolution order: an explicit argument, then the environment pin,
    then the size heuristic.  The heuristic keeps the tiled reference
    for single-work-group launches (its per-work-group Python overhead
    only matters when it scales with the launch); for larger launches it
    consults the launch's maximum per-channel delay span when the
    caller supplies one (``reuse_span`` / ``samples``): a compact span
    (``2 * reuse_span <= samples``) means the Eq. 3 working set fits a
    staged block, so the reuse-tiled executor wins — the Apertif
    regime — and otherwise the whole-stream vectorized path does — the
    LOFAR regime, where spans dwarf the batch and staging would copy
    most of the stream per block.
    """
    choice = normalize_backend(backend)
    if choice != "auto":
        return choice
    pinned = backend_from_env()
    if pinned is not None:
        return pinned
    if n_work_groups <= 1:
        return "tiled"
    if (
        reuse_span is not None
        and samples is not None
        and 2 * reuse_span <= samples
    ):
        return "channel_tile"
    return "vectorized"
