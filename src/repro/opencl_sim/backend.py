"""Kernel executor backend selection.

Two functionally identical executors implement a configured kernel:

* ``"tiled"`` — :class:`~repro.opencl_sim.kernel.DedispersionKernel`'s
  work-group replay of the generated OpenCL source, the reference the
  property tests trust;
* ``"vectorized"`` — :mod:`repro.opencl_sim.vectorized`'s whole-array
  fast path, bit-identical to the tiled executor (float32, exact
  equality) because both accumulate channels in the same order.

``"auto"`` (the default everywhere) resolves the choice at launch time:
the :envvar:`REPRO_KERNEL_BACKEND` environment variable pins a backend
process-wide, and otherwise the heuristic picks the vectorized path for
any launch the tiled executor would iterate more than one work-group
over — the regime where its Python loops dominate.  An explicit
``backend="tiled"``/``"vectorized"`` argument always wins over the
environment.
"""

from __future__ import annotations

import os

from repro.errors import ValidationError

#: The accepted values of every ``backend=`` parameter.
KERNEL_BACKENDS = ("tiled", "vectorized", "auto")

#: Environment variable pinning the backend for a whole process.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"


def normalize_backend(backend: str | None) -> str:
    """Validate a ``backend=`` value; ``None`` means ``"auto"``."""
    if backend is None:
        return "auto"
    if backend not in KERNEL_BACKENDS:
        raise ValidationError(
            f"unknown kernel backend {backend!r}; expected one of "
            f"{', '.join(KERNEL_BACKENDS)}"
        )
    return backend


def backend_from_env() -> str | None:
    """The :envvar:`REPRO_KERNEL_BACKEND` override, validated, or None."""
    value = os.environ.get(BACKEND_ENV_VAR)
    if value is None or value == "":
        return None
    if value not in KERNEL_BACKENDS:
        raise ValidationError(
            f"${BACKEND_ENV_VAR}={value!r} is not a kernel backend; "
            f"expected one of {', '.join(KERNEL_BACKENDS)}"
        )
    return None if value == "auto" else value


def resolve_backend(backend: str | None, n_work_groups: int) -> str:
    """The executor to run one launch with: ``"tiled"`` or ``"vectorized"``.

    Resolution order: an explicit ``"tiled"``/``"vectorized"`` argument,
    then the environment pin, then the size heuristic — the vectorized
    path wins whenever the tiled executor would loop over more than one
    work-group (its per-work-group Python overhead scales with the
    launch, the vectorized path's does not).
    """
    choice = normalize_backend(backend)
    if choice != "auto":
        return choice
    pinned = backend_from_env()
    if pinned is not None:
        return pinned
    return "vectorized" if n_work_groups > 1 else "tiled"
